(* Tests for `dsmloc serve`: the total wire codec under hostile input,
   the pool's deadline and frame-cap hardening, the persistent Server
   fleet (warm workers, overload shedding, recycling), incremental
   phase-key reuse, and the daemon end-to-end over a real Unix-domain
   socket - including malformed frames, hung and crashing workers,
   an overload burst, and SIGTERM drain. *)

module W = Frontend.Wire
module P = Core.Pool
module S = Core.Server

let jacobi_src =
  {|program jacobi2d
param N = 8..64
real U(N,N)
real V(N,N)
repeat

phase SWEEP:
  doall I = 1, N-2
    do J = 1, N-2
      V(I,J) = U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1) work 4
    end
  end

phase COPY:
  doall I = 1, N-2
    do J = 1, N-2
      U(I,J) = V(I,J) work 1
    end
  end
|}

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let test_frame_roundtrip () =
  let payload = "hello \xc3\xa9 world" in
  let frame = W.encode_frame payload in
  let d = W.decoder () in
  W.feed d frame ~pos:0 ~len:(Bytes.length frame);
  (match W.next d with
  | W.Frame p -> Alcotest.(check string) "payload back" payload p
  | _ -> Alcotest.fail "expected a frame");
  Alcotest.(check bool) "drained" true (W.next d = W.Need_more)

let test_frame_trickle () =
  (* a slow-trickle peer: one byte per feed, frame still comes out *)
  let frame = W.encode_frame "trickle" in
  let d = W.decoder () in
  Bytes.iteri
    (fun i _ ->
      (match W.next d with
      | W.Need_more -> ()
      | W.Frame _ when i = Bytes.length frame - 1 -> ()
      | _ -> Alcotest.fail "frame before all bytes arrived");
      W.feed d frame ~pos:i ~len:1)
    frame;
  match W.next d with
  | W.Frame p -> Alcotest.(check string) "payload" "trickle" p
  | _ -> Alcotest.fail "expected the frame after the last byte"

let test_frame_oversized_poisons () =
  (* a length prefix over the cap is Bad before any allocation, and the
     decoder stays poisoned *)
  let d = W.decoder ~max_frame:1024 () in
  let hdr = Bytes.make 8 '\xff' in
  W.feed d hdr ~pos:0 ~len:8;
  (match W.next d with
  | W.Bad _ -> ()
  | _ -> Alcotest.fail "oversized length must be Bad");
  W.feed_string d "more bytes";
  match W.next d with
  | W.Bad _ -> ()
  | _ -> Alcotest.fail "decoder must stay poisoned after Bad"

let test_frame_truncated () =
  let frame = W.encode_frame (String.make 100 'x') in
  let d = W.decoder () in
  W.feed d frame ~pos:0 ~len:30;
  Alcotest.(check bool) "mid-payload" true (W.next d = W.Need_more);
  Alcotest.(check int) "buffered the partial" 30 (W.buffered d)

let test_request_roundtrip () =
  let req =
    W.request ~env:[ ("N", 32); ("M", 16) ] ~procs:8 ~deadline:2.5 ~hang:0.25
      ~crash:true jacobi_src
  in
  match W.parse_request (W.encode_request req) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok r ->
      Alcotest.(check string) "source" jacobi_src r.W.source;
      Alcotest.(check (list (pair string int)))
        "env"
        [ ("N", 32); ("M", 16) ]
        r.W.env;
      Alcotest.(check int) "procs" 8 r.W.procs;
      Alcotest.(check bool) "deadline" true (r.W.deadline = Some 2.5);
      Alcotest.(check (float 1e-9)) "hang" 0.25 r.W.hang;
      Alcotest.(check bool) "crash" true r.W.crash

let test_request_malformed () =
  let bad s =
    match W.parse_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %S" s
  in
  bad "%bogus 3\nprogram p\n";
  bad "%procs many\nprogram p\n";
  bad "%env N\nprogram p\n";
  bad "%deadline soon\nprogram p\n"

let test_response_roundtrip () =
  (* the body may itself contain a line of dashes; only the first
     separator counts *)
  let body = "report\n---\nnot a separator\n" in
  let resp =
    W.response ~code:"SERVE-OVERLOAD" ~artifact_hits:3 ~worker_requests:7
      ~elapsed_ms:12.5 ~retry_after:0.25 W.Overload body
  in
  match W.parse_response (W.encode_response resp) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok r ->
      Alcotest.(check bool) "status" true (r.W.status = W.Overload);
      Alcotest.(check bool) "code" true (r.W.code = Some "SERVE-OVERLOAD");
      Alcotest.(check int) "hits" 3 r.W.artifact_hits;
      Alcotest.(check int) "worker requests" 7 r.W.worker_requests;
      Alcotest.(check bool) "retry-after" true (r.W.retry_after = Some 0.25);
      Alcotest.(check string) "body" body r.W.body

(* ------------------------------------------------------------------ *)
(* Pool.map hardening *)

let counter name =
  let snap = Core.Metrics.snapshot () in
  try List.assoc name snap.Core.Metrics.counters with Not_found -> 0

let test_map_deadline () =
  (* a worker stuck in a 60s job is SIGKILLed at the 0.3s deadline and
     the job fails with POOL-DEADLINE; siblings are untouched *)
  let kills0 = counter "pool.deadline_kills" in
  let f ~attempt:_ j =
    if j = 1 then Unix.sleepf 60.;
    j * 2
  in
  let outcomes, _ = P.map ~workers:2 ~retries:0 ~deadline:0.3 ~f [ 0; 1; 2 ] in
  (match List.nth outcomes 1 with
  | P.Failed { reasons; _ } ->
      Alcotest.(check bool) "POOL-DEADLINE reason" true
        (List.exists
           (fun r ->
             let n = String.length r and p = "POOL-DEADLINE" in
             let m = String.length p in
             let rec go k = k + m <= n && (String.sub r k m = p || go (k + 1)) in
             go 0)
           reasons)
  | P.Done _ -> Alcotest.fail "hung job cannot succeed");
  List.iter
    (fun j ->
      match List.nth outcomes j with
      | P.Done d -> Alcotest.(check int) "sibling" (j * 2) d.value
      | P.Failed _ -> Alcotest.failf "job %d lost to the hung sibling" j)
    [ 0; 2 ];
  Alcotest.(check bool) "deadline kill counted" true
    (counter "pool.deadline_kills" > kills0)

(* ------------------------------------------------------------------ *)
(* Pool.Server: the persistent fleet *)

let rec collect srv n acc deadline =
  if n <= 0 then List.rev acc
  else if Unix.gettimeofday () > deadline then
    Alcotest.failf "timed out waiting for %d more completions" n
  else
    let cs = P.Server.wait_step srv ~timeout:0.2 in
    collect srv (n - List.length cs) (List.rev_append cs acc) deadline

let collect_n srv n = collect srv n [] (Unix.gettimeofday () +. 30.)

let submit_ok srv ?affinity ?deadline x =
  match P.Server.submit srv ?affinity ?deadline x with
  | Ok id -> id
  | Error `Overloaded -> Alcotest.fail "unexpected overload"

let test_server_warm () =
  (* one worker, no reset between jobs: c_worker_jobs counts up *)
  let srv = P.Server.create ~workers:1 ~f:(fun x -> x * x) () in
  Fun.protect ~finally:(fun () -> P.Server.destroy srv) @@ fun () ->
  let ids = List.map (fun x -> submit_ok srv x) [ 2; 3; 4 ] in
  let cs = collect_n srv 3 in
  let by_id id = List.find (fun c -> c.P.Server.c_id = id) cs in
  List.iteri
    (fun i (x, id) ->
      let c = by_id id in
      (match c.P.Server.c_outcome with
      | Ok v -> Alcotest.(check int) "value" (x * x) v
      | Error (code, r) -> Alcotest.failf "job failed: %s %s" code r);
      Alcotest.(check int) "worker stayed warm" (i + 1)
        c.P.Server.c_worker_jobs)
    (List.combine [ 2; 3; 4 ] ids)

let test_server_result_cap () =
  (* a worker whose result frame exceeds the cap is killed and the job
     fails with POOL-BAD-FRAME instead of Out_of_memory in the parent *)
  let srv =
    P.Server.create ~workers:1 ~result_cap:256
      ~f:(fun n -> String.make n 'x')
      ()
  in
  Fun.protect ~finally:(fun () -> P.Server.destroy srv) @@ fun () ->
  let _big = submit_ok srv 100_000 in
  (match collect_n srv 1 with
  | [ { P.Server.c_outcome = Error ("POOL-BAD-FRAME", _); _ } ] -> ()
  | [ { P.Server.c_outcome = Error (code, r); _ } ] ->
      Alcotest.failf "wrong code %s: %s" code r
  | _ -> Alcotest.fail "oversized result cannot succeed");
  (* the replacement worker serves small results fine *)
  let _small = submit_ok srv 10 in
  match collect_n srv 1 with
  | [ { P.Server.c_outcome = Ok s; _ } ] ->
      Alcotest.(check int) "fresh worker answers" 10 (String.length s)
  | _ -> Alcotest.fail "pool must survive a bad frame"

let test_server_overload () =
  (* one busy worker + a 1-deep queue: the third concurrent submit is
     shed with `Overloaded *)
  let srv =
    P.Server.create ~workers:1 ~queue_cap:1 ~f:(fun d -> Unix.sleepf d; 0) ()
  in
  Fun.protect ~finally:(fun () -> P.Server.destroy srv) @@ fun () ->
  let _running = submit_ok srv 0.3 in
  let _queued = submit_ok srv 0.0 in
  (match P.Server.submit srv 0.0 with
  | Error `Overloaded -> ()
  | Ok _ -> Alcotest.fail "third submit must be shed");
  Alcotest.(check int) "queue depth" 1 (P.Server.queue_depth srv);
  let cs = collect_n srv 2 in
  Alcotest.(check int) "both admitted jobs complete" 2 (List.length cs)

let test_server_recycle () =
  (* a worker is replaced after max_worker_jobs requests; the next job
     runs on a cold (c_worker_jobs = 1) fork *)
  let srv = P.Server.create ~workers:1 ~max_worker_jobs:2 ~f:(fun x -> x) () in
  Fun.protect ~finally:(fun () -> P.Server.destroy srv) @@ fun () ->
  let worker_jobs =
    List.concat_map
      (fun x ->
        let _ = submit_ok srv x in
        List.map
          (fun c -> c.P.Server.c_worker_jobs)
          (collect_n srv 1))
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "recycled after two jobs" [ 1; 2; 1 ] worker_jobs;
  Alcotest.(check bool) "recycle counted" true (P.Server.recycles srv >= 1)

let test_server_deadline () =
  (* an in-flight job past its budget is killed with POOL-DEADLINE and
     never retried; the fleet survives *)
  let srv = P.Server.create ~workers:1 ~f:(fun d -> Unix.sleepf d; 1) () in
  Fun.protect ~finally:(fun () -> P.Server.destroy srv) @@ fun () ->
  let _hung = submit_ok srv ~deadline:0.3 60. in
  (match collect_n srv 1 with
  | [ { P.Server.c_outcome = Error ("POOL-DEADLINE", _); c_attempts; _ } ] ->
      Alcotest.(check int) "deadlines are not retried" 1 c_attempts
  | _ -> Alcotest.fail "hung job must fail with POOL-DEADLINE");
  let _ok = submit_ok srv 0. in
  match collect_n srv 1 with
  | [ { P.Server.c_outcome = Ok 1; _ } ] -> ()
  | _ -> Alcotest.fail "fleet must survive a deadline kill"

let test_server_drain () =
  (* drain finishes queued work within the deadline, kills past it *)
  let srv = P.Server.create ~workers:1 ~f:(fun d -> Unix.sleepf d; 0) () in
  let _fast = submit_ok srv 0.05 in
  let _slow = submit_ok srv 60. in
  let cs = P.Server.drain srv ~deadline:0.5 in
  P.Server.destroy srv;
  Alcotest.(check int) "both jobs completed one way or the other" 2
    (List.length cs);
  let oks, errs =
    List.partition (fun c -> Result.is_ok c.P.Server.c_outcome) cs
  in
  Alcotest.(check int) "fast job finished" 1 (List.length oks);
  match errs with
  | [ { P.Server.c_outcome = Error ("POOL-DRAIN", _); _ } ] -> ()
  | _ -> Alcotest.fail "slow job must be killed with POOL-DRAIN"

(* ------------------------------------------------------------------ *)
(* Incremental phase-key reuse: editing one phase must not invalidate
   the sibling's cached analysis (the warm-serving contract). *)

let store_hits name =
  match List.find_opt (fun s -> s.Symbolic.Artifact.s_name = name)
          (Symbolic.Artifact.stats ())
  with
  | Some s -> s.Symbolic.Artifact.hits
  | None -> 0

let test_phase_key_incremental () =
  let edited =
    (* same SWEEP phase, different COPY body (scaled copy) *)
    String.concat "\n"
      (List.map
         (fun line ->
           if line = "      U(I,J) = V(I,J) work 1" then
             "      U(I,J) = V(I,J) + V(I,J) work 2"
           else line)
         (String.split_on_char '\n' jacobi_src))
  in
  let p1 = Frontend.Parse.program jacobi_src in
  let p2 = Frontend.Parse.program edited in
  Alcotest.(check bool) "the edit changed the program" true (p1 <> p2);
  (* prime the cache from a clean slate *)
  Symbolic.Artifact.clear_all ();
  List.iter (fun ph -> ignore (Ir.Phase.analyze p1 ph)) p1.Ir.Types.phases;
  let hits0 = store_hits "phase.analyze" in
  List.iter (fun ph -> ignore (Ir.Phase.analyze p2 ph)) p2.Ir.Types.phases;
  let hits1 = store_hits "phase.analyze" in
  (* exactly the untouched SWEEP phase is reused; the edited COPY is
     re-analyzed *)
  Alcotest.(check int) "one sibling phase reused" (hits0 + 1) hits1;
  Alcotest.(check bool) "keys differ for the edited phase" true
    (Ir.Types.phase_context_key p1 (List.nth p1.phases 1)
    <> Ir.Types.phase_context_key p2 (List.nth p2.phases 1));
  Alcotest.(check bool) "keys agree for the untouched phase" true
    (Ir.Types.phase_context_key p1 (List.hd p1.phases)
    = Ir.Types.phase_context_key p2 (List.hd p2.phases))

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end over a real socket *)

let temp_sock () =
  let path = Filename.temp_file "dsmloc-serve" ".sock" in
  Sys.remove path;
  path

let start_daemon ?(workers = 2) ?(queue_cap = 64) ?default_deadline
    ?(test_hooks = true) () =
  let sock = temp_sock () in
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* the daemon: silence its stderr, serve until SIGTERM *)
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       Unix.close devnull;
       S.run
         {
           S.default_config with
           socket = Some sock;
           workers;
           queue_cap;
           default_deadline;
           test_hooks;
         }
     with _ -> Unix._exit 1);
    Unix._exit 0
  end;
  let rec wait n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "daemon did not come up"
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 100;
  (sock, pid)

let stop_daemon (sock, pid) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon exited cleanly" true (status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket removed on shutdown" false
    (Sys.file_exists sock)

let request_ok sock req =
  match S.Client.request ~socket:sock ~timeout:30. req with
  | Ok r -> r
  | Error e -> Alcotest.failf "transport failure: %s" e

let test_daemon_warm_repeat () =
  let ((sock, _) as d) = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let req = W.request ~env:[ ("N", 32) ] ~procs:4 jacobi_src in
  let r1 = request_ok sock req in
  Alcotest.(check bool) "first request ok" true (r1.W.status = W.Ok);
  Alcotest.(check bool) "report produced" true (String.length r1.W.body > 100);
  Alcotest.(check int) "served cold" 1 r1.W.worker_requests;
  let r2 = request_ok sock req in
  Alcotest.(check bool) "repeat ok" true (r2.W.status = W.Ok);
  Alcotest.(check string) "byte-identical reply" r1.W.body r2.W.body;
  Alcotest.(check bool) "repeat hit the warm artifact" true
    (r2.W.artifact_hits > 0);
  Alcotest.(check int) "affinity routed to the warm worker" 2
    r2.W.worker_requests;
  (* a different env is a different key: re-analyzed, not served stale *)
  let r3 = request_ok sock (W.request ~env:[ ("N", 16) ] ~procs:4 jacobi_src) in
  Alcotest.(check bool) "edited env ok" true (r3.W.status = W.Ok);
  Alcotest.(check bool) "different env, different report" true
    (r3.W.body <> r1.W.body)

let test_daemon_bad_inputs () =
  let ((sock, _) as d) = start_daemon () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (* an unparsable program is a structured SERVE-PARSE error *)
  let r = request_ok sock (W.request "program broken\nreal A(\n") in
  Alcotest.(check bool) "parse error status" true (r.W.status = W.Error);
  Alcotest.(check bool) "SERVE-PARSE" true (r.W.code = Some "SERVE-PARSE");
  (* a malformed directive line is rejected on admission *)
  let r =
    match
      S.Client.raw ~socket:sock ~timeout:30.
        (W.encode_frame "%bogus directive\nprogram p\n")
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "transport failure: %s" e
  in
  Alcotest.(check bool) "SERVE-BAD-REQUEST" true
    (r.W.code = Some "SERVE-BAD-REQUEST");
  (* a corrupt length prefix is SERVE-BAD-FRAME, never an allocation *)
  let r =
    match S.Client.raw ~socket:sock ~timeout:30. (Bytes.make 8 '\xff') with
    | Ok r -> r
    | Error e -> Alcotest.failf "transport failure: %s" e
  in
  Alcotest.(check bool) "SERVE-BAD-FRAME" true
    (r.W.code = Some "SERVE-BAD-FRAME");
  (* a truncated frame followed by disconnect must not wedge the daemon *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let partial = Bytes.sub (W.encode_frame (String.make 100 'x')) 0 20 in
  ignore (Unix.write fd partial 0 (Bytes.length partial));
  Unix.sleepf 0.1;
  Unix.close fd;
  (* ... and analysis still works afterwards *)
  let r = request_ok sock (W.request ~env:[ ("N", 16) ] jacobi_src) in
  Alcotest.(check bool) "daemon healthy after hostile peer" true
    (r.W.status = W.Ok)

let test_daemon_deadline_and_crash () =
  let ((sock, _) as d) = start_daemon ~workers:1 () in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  (* %hang past the %deadline: the worker is killed, SERVE-DEADLINE *)
  let r =
    request_ok sock (W.request ~deadline:0.4 ~hang:60. jacobi_src)
  in
  Alcotest.(check bool) "deadline status" true (r.W.status = W.Deadline);
  Alcotest.(check bool) "SERVE-DEADLINE" true
    (r.W.code = Some "SERVE-DEADLINE");
  (* %crash: the worker dies on every attempt, SERVE-WORKER-LOST *)
  let r = request_ok sock (W.request ~crash:true jacobi_src) in
  Alcotest.(check bool) "worker-lost status" true (r.W.status = W.Error);
  Alcotest.(check bool) "SERVE-WORKER-LOST" true
    (r.W.code = Some "SERVE-WORKER-LOST");
  (* the single worker slot was respawned both times *)
  let r = request_ok sock (W.request ~env:[ ("N", 16) ] jacobi_src) in
  Alcotest.(check bool) "healthy after kill and crash" true
    (r.W.status = W.Ok)

(* the burst test needs send-all-then-read-all, which the one-shot
   Client cannot do: drive the sockets by hand *)
let test_daemon_overload_burst () =
  let ((sock, _) as d) =
    start_daemon ~workers:1 ~queue_cap:1 ()
  in
  Fun.protect ~finally:(fun () -> stop_daemon d) @@ fun () ->
  let frame = W.encode_frame (W.encode_request (W.request ~hang:0.4 jacobi_src)) in
  let fds =
    List.init 4 (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        ignore (Unix.write fd frame 0 (Bytes.length frame));
        fd)
  in
  let deadline = Unix.gettimeofday () +. 60. in
  let responses =
    List.map
      (fun fd ->
        let dec = W.decoder () in
        let buf = Bytes.create 65536 in
        let rec go () =
          match W.next dec with
          | W.Frame p -> (
              match W.parse_response p with
              | Ok r -> r
              | Error e -> Alcotest.failf "bad response: %s" e)
          | W.Bad e -> Alcotest.failf "bad frame: %s" e
          | W.Need_more -> (
              if Unix.gettimeofday () > deadline then
                Alcotest.fail "timed out reading burst response";
              match Unix.select [ fd ] [] [] 1.0 with
              | [], _, _ -> go ()
              | _ -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> Alcotest.fail "daemon closed without replying"
                  | n ->
                      W.feed dec buf ~pos:0 ~len:n;
                      go ()))
        in
        let r = go () in
        Unix.close fd;
        r)
      fds
  in
  let shed = List.filter (fun r -> r.W.status = W.Overload) responses in
  let served = List.filter (fun r -> r.W.status = W.Ok) responses in
  Alcotest.(check bool) "admission stayed bounded: some shed" true
    (List.length shed >= 1);
  Alcotest.(check bool) "some served" true (List.length served >= 1);
  List.iter
    (fun r ->
      Alcotest.(check bool) "shed carries SERVE-OVERLOAD" true
        (r.W.code = Some "SERVE-OVERLOAD");
      Alcotest.(check bool) "shed carries a retry-after hint" true
        (match r.W.retry_after with Some t -> t > 0. | None -> false))
    shed

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "trickle" `Quick test_frame_trickle;
          Alcotest.test_case "oversized poisons" `Quick
            test_frame_oversized_poisons;
          Alcotest.test_case "truncated" `Quick test_frame_truncated;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request malformed" `Quick test_request_malformed;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
        ] );
      ( "pool-hardening",
        [ Alcotest.test_case "map deadline" `Quick test_map_deadline ] );
      ( "server",
        [
          Alcotest.test_case "warm workers" `Quick test_server_warm;
          Alcotest.test_case "result frame cap" `Quick test_server_result_cap;
          Alcotest.test_case "overload shed" `Quick test_server_overload;
          Alcotest.test_case "recycling" `Quick test_server_recycle;
          Alcotest.test_case "deadline kill" `Quick test_server_deadline;
          Alcotest.test_case "drain" `Quick test_server_drain;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "phase key narrowing" `Quick
            test_phase_key_incremental;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "warm repeat" `Quick test_daemon_warm_repeat;
          Alcotest.test_case "hostile inputs" `Quick test_daemon_bad_inputs;
          Alcotest.test_case "deadline and crash" `Quick
            test_daemon_deadline_and_crash;
          Alcotest.test_case "overload burst" `Quick
            test_daemon_overload_burst;
        ] );
    ]
