lib/ilp/model.ml: Array Balance Env Expr Format Fun Ir Lcg List Locality Lp Option Printf Qnum Symbolic Table1
