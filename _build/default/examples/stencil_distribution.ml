(* Stencil distribution: ghost zones, frontier updates, and the chunk
   size trade-off on the Jacobi kernel.

   Shows how the analysis recognizes overlapping storage (Theorem 1c),
   how the ILP trades load balance against frontier traffic when
   choosing CYCLIC(p), and what the simulator measures as p varies.

     dune exec examples/stencil_distribution.exe [n_exp] [H]
*)

open Locality

let () =
  let n = 1 lsl (try int_of_string Sys.argv.(1) with _ -> 5) in
  let h = try int_of_string Sys.argv.(2) with _ -> 4 in
  let prog = Codes.Jacobi.program in
  let env = Codes.Jacobi.env ~n in

  Format.printf "=== Jacobi 2-D, N = %d, H = %d ===@.@." n h;

  let t = Core.Pipeline.run prog ~env ~h in

  (* The SWEEP node: U is read with overlapping storage. *)
  let gu =
    List.find (fun (g : Lcg.graph) -> g.array = "U") t.lcg.graphs
  in
  let sweep = List.hd gu.nodes in
  Format.printf "U in SWEEP: attr %s, %a, intra: %s@."
    (Ir.Liveness.attr_to_string sweep.attr)
    Descriptor.Symmetry.pp sweep.sym
    (Intra.case_to_string sweep.intra.case);
  Format.printf "ghost-zone (halo) width measured: %d addresses@.@."
    (Lcg.halo t.lcg sweep);

  Format.printf "%a@.@." Core.Pipeline.report t;

  (* Sweep the chunk size manually and watch the frontier trade-off. *)
  Format.printf "--- CYCLIC(p) sweep (solver chose p = %d) ---@."
    t.plan.chunk.(0);
  Format.printf "%6s %10s %10s %12s@." "p" "remote" "T_par" "efficiency";
  let bound = (n - 2 + h - 1) / h in
  List.iter
    (fun p ->
      if p >= 1 && p <= bound then begin
        let chunk = Array.map (fun _ -> p) t.plan.chunk in
        let lcg = t.lcg in
        let plan' =
          Ilp.Distribution.of_solution lcg ~p:chunk
        in
        let r = Dsmsim.Exec.run lcg plan' t.machine in
        Format.printf "%6d %10d %10.0f %11.1f%%@." p r.total_remote r.par_time
          (100. *. r.efficiency)
      end)
    [ 1; 2; 4; 8; 16; 32; bound ]
