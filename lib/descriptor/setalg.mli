(** Closed-form set algebra over Phase Descriptors.

    The facade between the descriptor layer and {!Symbolic.Lattice}:
    evaluates a PD's rows under a concrete environment into stride-span
    boxes - mirroring {!Region.row_addresses} element-for-element (same
    offset evaluation, same signed parallel contribution, same unsigned
    sequential sweeps, empty rows dropped) - and answers the questions
    the pipeline used to answer by materializing the region in a hash
    table: cardinality, hull bounds, per-row overlap.  Every answer is
    exact or absent; enumeration survives only as the differential
    oracle ({!Region.addresses}) these functions are tested against.

    Functions raise {!Region.Not_rectangular} in exactly the situations
    enumeration would (a count or stride that does not evaluate), so
    existing degradation paths fire identically under both accounting
    modes - that equivalence is what makes symbolic and enumerated
    pipeline reports byte-identical. *)

open Symbolic

val row_box :
  Env.t -> Pd.group -> Pd.row -> par:int option -> Lattice.box option
(** The box of one row ([None] when the row denotes no addresses, i.e.
    some count evaluates [<= 0]).  [par = Some i] fixes the parallel
    iteration, [None] sweeps it as an extra dimension - the same
    convention as {!Region.row_addresses}.
    @raise Region.Not_rectangular when a value does not evaluate.
    @raise Lattice.Overflow on address arithmetic past native range. *)

val boxes : Env.t -> Pd.t -> par:int option -> Lattice.box list
(** All non-empty row boxes of all groups.
    @raise Region.Not_rectangular
    @raise Lattice.Overflow *)

val card : Env.t -> Pd.t -> par:int option -> int option
(** Exact cardinality of the region (union of all rows), or [None]
    when the union falls outside the closed-form fragment.
    @raise Region.Not_rectangular *)

val bounds : Env.t -> Pd.t -> par:int option -> (int * int) option
(** Exact inclusive hull of the region; [None] when the region is
    empty.  Always closed-form (hull bounds of a union need no
    disjointness structure).
    @raise Region.Not_rectangular *)
