(* End-to-end integration tests: the full pipeline on random programs
   (robustness: no crashes, invariants hold) and cross-validation of
   the analysis against simulation. *)

open Symbolic
open Ir

let i = Expr.int
let v = Expr.var

(* Random multi-phase programs over two arrays with affine accesses. *)
let gen_program =
  let open QCheck.Gen in
  let* n_phases = int_range 2 4 in
  let* par_n = int_range 6 20 in
  let gen_phase idx =
    let* stride = int_range 1 3 in
    let* offset = int_range 0 4 in
    let* width = int_range 1 3 in
    let* writes_a = bool in
    let* repeats_read = bool in
    let refs =
      let base = Expr.add (Expr.mul (i stride) (v "i")) (i offset) in
      let extra = Expr.add base (i width) in
      if writes_a then
        [ Build.read "B" [ base ]; Build.write "A" [ base ] ]
        @ (if repeats_read then [ Build.read "B" [ extra ] ] else [])
      else
        [ Build.read "A" [ base ]; Build.write "B" [ base ] ]
        @ if repeats_read then [ Build.read "A" [ extra ] ] else []
    in
    return
      (Build.phase
         (Printf.sprintf "P%d" idx)
         (Build.doall "i" ~lo:(i 0) ~hi:(i (Stdlib.( - ) par_n 1))
            [ Build.assign refs ]))
  in
  let rec phases k acc =
    if k = n_phases then return (List.rev acc)
    else
      let* ph = gen_phase k in
      phases (Stdlib.( + ) k 1) (ph :: acc)
  in
  let* ps = phases 0 [] in
  let* repeats = bool in
  return
    (Build.program ~repeats ~name:"rand" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 200 ]; Build.array "B" [ i 200 ] ]
       ps)

let arb_program =
  QCheck.make gen_program ~print:(Format.asprintf "%a" Types.pp_program)

let run_pipeline prog h =
  Core.Pipeline.run prog ~env:Env.empty ~h

(* The pipeline never crashes and the simulated run conserves accesses. *)
let prop_pipeline_total =
  QCheck.Test.make ~name:"pipeline total on random programs" ~count:60
    (QCheck.pair arb_program (QCheck.int_range 1 8))
    (fun (prog, h) ->
      let t = run_pipeline prog h in
      let r = Core.Pipeline.simulate t in
      let total = ref 0 in
      List.iter
        (fun ph ->
          Enumerate.iter prog Env.empty ph
            ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work:_ -> incr total))
        prog.phases;
      r.total_local + r.total_remote = !total
      && r.par_time > 0.0
      && r.efficiency > 0.0 && r.efficiency <= 1.0 +. 1e-9)

(* At H=1 every plan is communication-free and efficiency is 1. *)
let prop_h1_perfect =
  QCheck.Test.make ~name:"H=1 efficiency is 1" ~count:40 arb_program
    (fun prog ->
      let t = run_pipeline prog 1 in
      let r = Core.Pipeline.simulate t in
      r.total_remote = 0 && abs_float (r.efficiency -. 1.0) < 1e-9)

(* Edge labels are stable under parameter sampling: D edges come only
   from privatizable endpoints. *)
let prop_d_edges_from_p =
  QCheck.Test.make ~name:"D edges only at privatizable nodes" ~count:40
    arb_program (fun prog ->
      let t = run_pipeline prog 4 in
      List.for_all
        (fun (g : Locality.Lcg.graph) ->
          List.for_all
            (fun (e : Locality.Lcg.edge) ->
              (not (Locality.Table1.equal_label e.label Locality.Table1.D))
              ||
              let src = List.nth g.nodes e.src and dst = List.nth g.nodes e.dst in
              Ir.Liveness.equal_attr src.attr Ir.Liveness.P
              || Ir.Liveness.equal_attr dst.attr Ir.Liveness.P)
            g.edges)
        t.lcg.graphs)

(* The six registry codes drive the solver to a feasible, unbroken
   model at several machine sizes. *)
let test_registry_solvable () =
  Probe.with_seed 70 (fun () ->
      List.iter
        (fun (e : Codes.Registry.entry) ->
          List.iter
            (fun h ->
              let t =
                Core.Pipeline.run e.program ~env:(e.env_of_size 3) ~h
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s H=%d objective finite" e.name h)
                true
                (Float.is_finite t.solution.objective))
            [ 2; 4 ])
        Codes.Registry.all)

(* Analysis-simulation cross-check: a phase whose intra-phase condition
   holds and whose incoming edge is L generates no remote access to
   that array (modulo frontier reads served by the halo). *)
let test_l_chain_no_redistribution () =
  Probe.with_seed 71 (fun () ->
      let e = Codes.Registry.find "swim" in
      let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:4 in
      (* swim is a single chain per array: exactly one layout epoch,
         hence no redistribution (frontier updates are allowed). *)
      let epochs array =
        List.length
          (List.filter
             (fun (l : Ilp.Distribution.layout) -> String.equal l.array array)
             t.plan.layouts)
      in
      List.iter
        (fun (decl : Types.array_decl) ->
          Alcotest.(check int)
            (Printf.sprintf "swim %s single epoch" decl.name)
            1 (epochs decl.name))
        e.program.arrays)

(* The tentpole guarantee: the closed-form symbolic accounting and the
   historical enumerated accounting render byte-identical analysis
   reports on every registry kernel.  [report_core] excludes the
   diagnostics table, whose fallback-visibility line is mode-dependent
   by design. *)
let test_symbolic_enum_parity () =
  Probe.with_seed 73 (fun () ->
      let saved = !Lattice.mode in
      Fun.protect
        ~finally:(fun () -> Lattice.mode := saved)
        (fun () ->
          List.iter
            (fun (e : Codes.Registry.entry) ->
              let env = e.env_of_size e.default_size in
              let render mode =
                Lattice.mode := mode;
                let t = Core.Pipeline.run e.program ~env ~h:4 in
                Format.asprintf "%a" Core.Pipeline.report_core t
              in
              let sym = render Lattice.Auto in
              let enum = render Lattice.Enumerated_only in
              Alcotest.(check string)
                (e.name ^ " symbolic = enumerated report")
                enum sym)
            Codes.Registry.all))

let test_report_markdown () =
  Probe.with_seed 72 (fun () ->
      let e = Codes.Registry.find "adi" in
      let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:4 in
      let md = Core.Report.markdown t in
      let contains needle =
        let nh = String.length md and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub md i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun section ->
          Alcotest.(check bool) ("report has " ^ section) true (contains section))
        [
          "# Locality analysis report: adi";
          "## Locality-Communication Graph";
          "## Constraint model";
          "## Chains";
          "## Communication schedule";
          "## Simulation";
          "## Dataflow validation";
          "**PASS**";
          "digraph lcg";
        ])

let () =
  Alcotest.run "integration"
    [
      ( "random-programs",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_total;
          QCheck_alcotest.to_alcotest prop_h1_perfect;
          QCheck_alcotest.to_alcotest prop_d_edges_from_p;
        ] );
      ( "registry",
        [
          Alcotest.test_case "solvable everywhere" `Quick test_registry_solvable;
          Alcotest.test_case "L chains keep one epoch" `Quick
            test_l_chain_no_redistribution;
          Alcotest.test_case "markdown report" `Quick test_report_markdown;
          Alcotest.test_case "symbolic/enumerated parity" `Quick
            test_symbolic_enum_parity;
        ] );
    ]
