lib/codes/matmul.ml: Assume Env Expr Ir Symbolic
