open Locality
open Ilp

type phase_stats = Machine.phase_stats = {
  name : string;
  local : int;
  remote : int;
  compute : int;
  time : float;
}

type comm_kind = Machine.comm_kind = Redistribution | Frontier_update

type comm_stats = Machine.comm_stats = {
  array : string;
  kind : comm_kind;
  before_phase : int;
  words : int;
  time : float;
}

type proc_stats = Machine.proc_stats = {
  compute_time : float;
  access_time : float;  (** local + remote access cycles *)
}

type run = Machine.run = {
  h : int;
  phases : phase_stats list;
  comms : comm_stats list;
  par_time : float;
  seq_time : float;
  efficiency : float;
  total_local : int;
  total_remote : int;
  per_proc : proc_stats array;
  retry_time : float;
  fault_stats : Fault.stats option;
}

let proc_of_iteration ~chunk ~h i = i / max 1 chunk mod h

let array_size ?on_error (lcg : Lcg.t) array =
  Comm.array_size ?on_error lcg array

let seq_env_run (lcg : Lcg.t) (m : Cost.machine) =
  let total = ref 0.0 in
  List.iter
    (fun ph ->
      Ir.Enumerate.iter lcg.prog lcg.env ph ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work ->
          total := !total +. float_of_int (work + m.t_local)))
    lcg.prog.phases;
  !total

(* Exponential-backoff accounting for one retried message: attempt [a]
   (1-based) pays [t_startup * 2^(a-1)] wait plus a full resend of the
   words. *)
let retry_cost (m : Cost.machine) (r : Fault.retry) =
  let rec go a acc =
    if a > r.attempts then acc
    else
      go (a + 1)
        (acc
        +. float_of_int ((m.t_startup * (1 lsl (a - 1))) + (r.words * m.t_word)))
  in
  go 1 0.0

module L = Symbolic.Lattice

(* Everything one phase contributes per round: the same accesses play
   out every round, so the accounting is computed once - symbolically
   when the phase stays inside the closed-form fragment, by replaying
   the enumerator otherwise - and applied per round. *)
type summary = {
  s_local : int;
  s_remote : int;
  s_compute : int;
  s_clock : float array;  (** per processor: work + access cycles *)
  s_pcompute : float array;
  s_paccess : float array;
  s_seq : float;  (** contribution to the serialized baseline *)
  s_written : string list;  (** arrays the phase writes *)
}

let summarize_enum (lcg : Lcg.t) (plan : Distribution.plan) (m : Cost.machine)
    ~size_of k ph =
  let h = plan.h in
  let chunk = plan.chunk.(k) in
  let clock = Array.make h 0.0 in
  let pcomp = Array.make h 0.0 and pacc = Array.make h 0.0 in
  let local = ref 0 and remote = ref 0 and compute = ref 0 in
  let seq = ref 0.0 in
  let written = Hashtbl.create 4 in
  Ir.Enumerate.iter lcg.prog lcg.env ph
    ~f:(fun ~par ~array ~addr access ~work ->
      let proc =
        match par with
        | Some i -> proc_of_iteration ~chunk ~h i
        | None -> 0
      in
      (* Remote writes are single-sided pipelined puts (t_put);
         remote reads pay the full round trip (t_remote). *)
      let remote_cost =
        match access with
        | Ir.Types.Read -> m.t_remote
        | Ir.Types.Write -> m.t_put
      in
      let access_cost =
        if List.mem (k, array) plan.privatized then begin
          incr local;
          m.t_local
        end
        else
          match Distribution.layout_for plan ~array ~phase_idx:k with
          | Some l ->
              let owned = Distribution.proc_of plan l ~addr = proc in
              (* Reads within the replicated ghost zone around an
                 owned block are served locally (Theorem 1c). *)
              (* the replicated window matches the frontier strips:
                 min(halo, block) cells beyond each owned block *)
              let w = min l.halo l.block in
              let halo_local =
                (not owned)
                && l.halo > 0
                && (match access with Ir.Types.Read -> true | Ir.Types.Write -> false)
                && ((match size_of array with
                    | Some s -> l.halo >= s
                    | None -> false (* unknown size: not replicated *))
                   || Distribution.proc_of plan l ~addr:(addr - w) = proc
                   || Distribution.proc_of plan l ~addr:(addr + w) = proc)
              in
              if owned || halo_local then begin
                incr local;
                m.t_local
              end
              else begin
                incr remote;
                remote_cost
              end
          | None ->
              incr local;
              m.t_local
      in
      (match access with
      | Ir.Types.Write -> Hashtbl.replace written array ()
      | Ir.Types.Read -> ());
      compute := !compute + work;
      clock.(proc) <- clock.(proc) +. float_of_int (work + access_cost);
      pcomp.(proc) <- pcomp.(proc) +. float_of_int work;
      pacc.(proc) <- pacc.(proc) +. float_of_int access_cost;
      seq := !seq +. float_of_int (work + m.t_local));
  {
    s_local = !local;
    s_remote = !remote;
    s_compute = !compute;
    s_clock = clock;
    s_pcompute = pcomp;
    s_paccess = pacc;
    s_seq = !seq;
    s_written = Hashtbl.fold (fun a () acc -> a :: acc) written [];
  }

(* The same totals in closed form: per site, per-processor event counts
   against the layout's ownership intervals (and the ghost-zone family
   for halo'd reads), all integer arithmetic overflow-checked.  Sums of
   integers below 2^53 convert to the exact floats the enumerating path
   accumulates, so reports agree bit-for-bit. *)
let summarize_symbolic (lcg : Lcg.t) (plan : Distribution.plan)
    (m : Cost.machine) ~size_of k ph =
  match Ir.Shape.of_phase lcg.prog lcg.env ph with
  | None -> None
  | Some t -> (
      let exception Subtle in
      try
        let h = plan.h in
        let chunk = plan.chunk.(k) in
        let local = ref 0 and remote = ref 0 and compute = ref 0 in
        let clock = Array.make h 0 in
        let pcomp = Array.make h 0 and pacc = Array.make h 0 in
        let seq = ref 0 in
        let written = ref [] in
        let events_of s sets =
          match
            Owncount.per_proc ~h ~chunk ~par:s.Ir.Shape.par ~par_n:t.par_n
              ~base:s.Ir.Shape.base ~seq:s.Ir.Shape.seq ~sets
          with
          | None -> raise Subtle
          | Some r -> r
        in
        let all_local = Array.make h [] in
        List.iter
          (fun (s : Ir.Shape.site) ->
            if Ir.Shape.emits t s then begin
              (match s.access with
              | Ir.Types.Write ->
                  if not (List.mem s.array !written) then
                    written := s.array :: !written
              | Ir.Types.Read -> ());
              let remote_cost =
                match s.access with
                | Ir.Types.Read -> m.t_remote
                | Ir.Types.Write -> m.t_put
              in
              let events, local_hits =
                if List.mem (k, s.array) plan.privatized then
                  let ev, _ = events_of s all_local in
                  (ev, Array.copy ev)
                else
                  match
                    Distribution.layout_for plan ~array:s.array ~phase_idx:k
                  with
                  | None ->
                      let ev, _ = events_of s all_local in
                      (ev, Array.copy ev)
                  | Some l -> (
                      let box =
                        match Ir.Shape.box t s with
                        | Some b -> b
                        | None -> raise Subtle
                      in
                      let w = min l.halo l.block in
                      let owned_sets =
                        match
                          Owncount.intervals_of
                            (Distribution.own_of ~h l)
                            ~lo:(L.lo box - w) ~hi:(L.hi box + w)
                        with
                        | None -> raise Subtle
                        | Some o -> o
                      in
                      let ev, own_hits = events_of s owned_sets in
                      match s.access with
                      | Ir.Types.Write -> (ev, own_hits)
                      | Ir.Types.Read ->
                          let replicated =
                            l.halo > 0
                            &&
                            match size_of s.array with
                            | Some sz -> l.halo >= sz
                            | None -> false
                          in
                          if replicated then (ev, Array.copy ev)
                          else if l.halo > 0 then begin
                            let halo_sets =
                              Array.map
                                (fun o ->
                                  L.Iv.subtract
                                    (L.Iv.union (L.Iv.shift o w)
                                       (L.Iv.shift o (-w)))
                                    o)
                                owned_sets
                            in
                            let _, halo_hits = events_of s halo_sets in
                            ( ev,
                              Array.init h (fun p0 ->
                                  own_hits.(p0) + halo_hits.(p0)) )
                          end
                          else (ev, own_hits))
              in
              for p0 = 0 to h - 1 do
                let e = events.(p0) in
                let lh = local_hits.(p0) in
                let rh = e - lh in
                let wk = L.Safe.mul s.work e in
                local := L.Safe.add !local lh;
                remote := L.Safe.add !remote rh;
                compute := L.Safe.add !compute wk;
                clock.(p0) <-
                  L.Safe.add clock.(p0)
                    (L.Safe.add wk
                       (L.Safe.add (L.Safe.mul m.t_local lh)
                          (L.Safe.mul remote_cost rh)));
                pcomp.(p0) <- L.Safe.add pcomp.(p0) wk;
                pacc.(p0) <-
                  L.Safe.add pacc.(p0)
                    (L.Safe.add (L.Safe.mul m.t_local lh)
                       (L.Safe.mul remote_cost rh));
                seq :=
                  L.Safe.add !seq (L.Safe.mul (s.work + m.t_local) e)
              done
            end)
          t.sites;
        Some
          {
            s_local = !local;
            s_remote = !remote;
            s_compute = !compute;
            s_clock = Array.map float_of_int clock;
            s_pcompute = Array.map float_of_int pcomp;
            s_paccess = Array.map float_of_int pacc;
            s_seq = float_of_int !seq;
            s_written = !written;
          }
      with Subtle | L.Overflow -> None)

let summarize lcg plan m ~size_of k ph =
  match !L.mode with
  | L.Enumerated_only -> summarize_enum lcg plan m ~size_of k ph
  | L.Auto | L.Symbolic_only -> (
      match summarize_symbolic lcg plan m ~size_of k ph with
      | Some s -> s
      | None ->
          L.note_fallback ~stage:"exec"
            ("phase " ^ ph.Ir.Types.phase_name ^ " accounting");
          summarize_enum lcg plan m ~size_of k ph)

let exec_timer = Symbolic.Metrics.timer "dsmsim.exec"
let msg_count = Symbolic.Metrics.counter "exec.messages"
let word_count = Symbolic.Metrics.counter "exec.words"
let local_count = Symbolic.Metrics.counter "exec.local"
let remote_count = Symbolic.Metrics.counter "exec.remote"

(* The priced simulator as a {!Machine.BACKEND}: [phase] applies the
   per-phase summary (computed once at creation, replayed per round),
   [comm] prices a scheduled event against the busiest processor. *)
module Sim = struct
  type t = {
    lcg : Lcg.t;
    plan : Distribution.plan;
    m : Cost.machine;
    summaries : summary array;
    proc_compute : float array;
    proc_access : float array;
    (* written-array set of the phase currently being stepped; [comm]
       is called for a phase's frontier events after its [phase], so
       the frontier filter sees the right sweep. *)
    mutable written : string list;
  }

  let create ?on_error (lcg : Lcg.t) (plan : Distribution.plan)
      (m : Cost.machine) =
    let sizes = Hashtbl.create 8 in
    let size_of array =
      match Hashtbl.find_opt sizes array with
      | Some s -> s
      | None ->
          let s = array_size ?on_error lcg array in
          Hashtbl.add sizes array s;
          s
    in
    {
      lcg;
      plan;
      m;
      summaries =
        Array.of_list
          (List.mapi
             (fun k ph -> summarize lcg plan m ~size_of k ph)
             lcg.prog.phases);
      proc_compute = Array.make plan.h 0.0;
      proc_access = Array.make plan.h 0.0;
      written = [];
    }

  (* Per-processor cost of one communication event: every processor
     overlaps its own sends and receives; the event completes when the
     busiest processor does. *)
  let event_time b messages =
    let h = b.plan.h in
    let sends = Array.make h 0 and recvs = Array.make h 0 in
    let msgs = Array.make h 0 in
    List.iter
      (fun (msg : Comm.message) ->
        Symbolic.Metrics.incr msg_count;
        Symbolic.Metrics.incr word_count ~by:msg.words;
        sends.(msg.src) <- sends.(msg.src) + msg.words;
        recvs.(msg.dst) <- recvs.(msg.dst) + msg.words;
        msgs.(msg.src) <- msgs.(msg.src) + 1)
      messages;
    let worst = ref 0.0 in
    for p0 = 0 to h - 1 do
      let t =
        float_of_int (msgs.(p0) * b.m.t_startup)
        +. float_of_int ((sends.(p0) + recvs.(p0)) * b.m.t_word)
      in
      if t > !worst then worst := t
    done;
    !worst

  let words_of messages =
    List.fold_left (fun a (msg : Comm.message) -> a + msg.words) 0 messages

  let comm b ~round:_ ~k = function
    | Comm.Redistribute { array; before_phase = _; messages } ->
        let t = event_time b messages in
        Some
          {
            array;
            kind = Machine.Redistribution;
            before_phase = k;
            words = words_of messages;
            time = t;
          }
    | Comm.Frontier { array; after_phase = _; messages } ->
        if List.mem array b.written then
          let t = event_time b messages in
          Some
            {
              array;
              kind = Machine.Frontier_update;
              before_phase = k + 1;
              words = words_of messages;
              time = t;
            }
        else None

  let phase b ~round:_ ~k (ph : Ir.Types.phase) =
    let s = b.summaries.(k) in
    for p0 = 0 to b.plan.h - 1 do
      b.proc_compute.(p0) <- b.proc_compute.(p0) +. s.s_pcompute.(p0);
      b.proc_access.(p0) <- b.proc_access.(p0) +. s.s_paccess.(p0)
    done;
    b.written <- s.s_written;
    (* Direct remote accesses are one-sided single-word gets/puts; they
       are traffic just as the aggregated schedule events are, so the
       message metrics count them on both accounting modes (the
       summaries are mode-independent by the enum-parity oracle). *)
    Symbolic.Metrics.incr msg_count ~by:s.s_remote;
    Symbolic.Metrics.incr word_count ~by:s.s_remote;
    ( {
        name = ph.Ir.Types.phase_name;
        local = s.s_local;
        remote = s.s_remote;
        compute = s.s_compute;
        time = Array.fold_left max 0.0 s.s_clock;
      },
      s.s_seq )

  let per_proc b =
    Array.init b.plan.h (fun p0 ->
        {
          compute_time = b.proc_compute.(p0);
          access_time = b.proc_access.(p0);
        })
end

module Sim_driver = Machine.Driver (Sim)

let run ?(rounds = 1) ?on_error ?faults ?(retries = 0) (lcg : Lcg.t)
    (plan : Distribution.plan) (m : Cost.machine) : run =
  Symbolic.Metrics.with_timer exec_timer @@ fun () ->
  let sched = Comm.generate ?on_error lcg plan in
  (* Fault injection perturbs the delivered schedule; retry attempts
     are charged per round (every round faces the same loss). *)
  let sched, fault_stats =
    match faults with
    | None -> (sched, None)
    | Some spec ->
        let delivered, st = Fault.apply spec ~retries sched in
        (delivered, Some st)
  in
  let retry_time_per_round =
    match fault_stats with
    | None -> 0.0
    | Some st ->
        List.fold_left (fun acc r -> acc +. retry_cost m r) 0.0 st.retries
  in
  let retry_time = float_of_int rounds *. retry_time_per_round in
  let b = Sim.create ?on_error lcg plan m in
  let r =
    Sim_driver.drive ~initial_time:retry_time ~rounds ~sched
      ~phases:lcg.prog.phases ~h:plan.h b
  in
  Symbolic.Metrics.incr local_count ~by:r.total_local;
  Symbolic.Metrics.incr remote_count ~by:r.total_remote;
  { r with retry_time; fault_stats }

let pp ppf (r : run) =
  Format.fprintf ppf
    "@[<v>H=%d  T_par=%.0f  T_seq=%.0f  efficiency=%.1f%%  local=%d remote=%d@,"
    r.h r.par_time r.seq_time (100.0 *. r.efficiency) r.total_local
    r.total_remote;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-6s local=%-8d remote=%-8d t=%.0f@," p.name
        p.local p.remote p.time)
    r.phases;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %s %s %s phase %d: %d words (t=%.0f)@,"
        (match c.kind with
        | Redistribution -> "redistribute"
        | Frontier_update -> "frontier")
        c.array
        (match c.kind with Redistribution -> "before" | Frontier_update -> "after")
        c.before_phase c.words c.time)
    r.comms;
  (match r.fault_stats with
  | None -> ()
  | Some st ->
      Format.fprintf ppf
        "  faults: %d msgs, %d dropped, %d duplicated, %d truncated, %d \
         recovered (%d resend attempts, backoff t=%.0f)@,"
        st.messages st.dropped st.duplicated st.truncated st.recovered
        (Fault.total_attempts st) r.retry_time);
  Format.fprintf ppf "@]"
