open Symbolic
open Locality
open Ilp

type message = {
  src : int;
  dst : int;
  ranges : (int * int) list;
  words : int;
}

type event =
  | Redistribute of {
      array : string;
      before_phase : int;
      messages : message list;
    }
  | Frontier of { array : string; after_phase : int; messages : message list }

type schedule = event list

(* Narrowed to the symbolic-evaluation failures only (an undeclared
   array is an internal invariant violation and must keep crashing): a
   size that does not evaluate means this array's messages cannot be
   generated, which [on_error] surfaces and [None] makes explicit so
   callers skip the array's events instead of doing layout math on a
   phantom size-0 array. *)
let array_size ?on_error (lcg : Lcg.t) array =
  let report msg =
    match on_error with Some f -> f msg | None -> ()
  in
  try
    Some
      (Env.eval lcg.env
         (Ir.Linearize.size ~dims:(Ir.Types.array_decl lcg.prog array).dims))
  with
  | Env.Unbound v ->
      report
        (Printf.sprintf
           "array %s: size has unbound parameter %s; omitting its messages"
           array v);
      None
  | Expr.Non_integral e ->
      report
        (Printf.sprintf
           "array %s: size is non-integral (%s); omitting its messages" array
           e);
      None
  | Qnum.Overflow ->
      report
        (Printf.sprintf "array %s: size overflowed; omitting its messages"
           array);
      None

(* Group (src, dst, addr) triples into aggregated messages with maximal
   contiguous ranges. *)
let aggregate (triples : (int * int * int) list) : message list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, addr) ->
      let key = (src, dst) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (addr :: prev))
    triples;
  Hashtbl.fold
    (fun (src, dst) addrs acc ->
      let sorted = List.sort_uniq compare addrs in
      let ranges =
        List.fold_left
          (fun acc a ->
            match acc with
            | (lo, hi) :: rest when a = hi + 1 -> (lo, a) :: rest
            | _ -> (a, a) :: acc)
          [] sorted
        |> List.rev
      in
      let words = List.length sorted in
      { src; dst; ranges; words } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))

(* Group (src, dst, [lo..hi]) range contributions into the same
   aggregated messages [aggregate] builds from per-address triples:
   per (src, dst) pair, maximal contiguous ascending ranges, words =
   addresses covered. *)
let aggregate_ranges (ranges : (int * int * (int * int)) list) : message list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, r) ->
      let key = (src, dst) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (r :: prev))
    ranges;
  Hashtbl.fold
    (fun (src, dst) rs acc ->
      let ranges = Lattice.Iv.norm rs in
      let words = List.fold_left (fun a (lo, hi) -> a + (hi - lo + 1)) 0 ranges in
      { src; dst; ranges; words } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))

(* Copy-in elision: entering a new layout epoch needs no
   redistribution when the epoch's accesses are all covered by writes
   performed inside the epoch before any exposed read - checked
   conservatively as "the epoch's first accessing phase writes a
   superset of everything the epoch touches". *)
let write_covers_epoch_enum (lcg : Lcg.t) (l : Distribution.layout) =
    let phases_of r = List.filteri (fun k _ -> r k) lcg.prog.phases in
    let head = List.nth lcg.prog.phases l.first_phase in
    let written = Hashtbl.create 256 in
    let all = Hashtbl.create 256 in
    Ir.Enumerate.iter lcg.prog lcg.env head
      ~f:(fun ~par:_ ~array ~addr access ~work:_ ->
        if String.equal array l.array then begin
          Hashtbl.replace all addr ();
          match access with
          | Ir.Types.Write -> Hashtbl.replace written addr ()
          | Ir.Types.Read -> ()
        end);
    (* the head phase itself must be write-only on this array *)
    let head_write_only =
      Hashtbl.length written = Hashtbl.length all && Hashtbl.length all > 0
    in
    head_write_only
    && List.for_all
         (fun ph ->
           let covered = ref true in
           Ir.Enumerate.iter lcg.prog lcg.env ph
             ~f:(fun ~par:_ ~array ~addr _ ~work:_ ->
               if String.equal array l.array && not (Hashtbl.mem written addr)
               then covered := false);
           !covered)
         (phases_of (fun k -> k > l.first_phase && k <= l.last_phase))

(* The same test by box subset algebra: answers only when certain
   (both the covering and some definite counterexample are provable),
   [None] otherwise. *)
let write_covers_epoch_symbolic (lcg : Lcg.t) (l : Distribution.layout) =
  let exception Subtle in
  try
    let shape_of k =
      match
        Ir.Shape.of_phase lcg.prog lcg.env (List.nth lcg.prog.phases k)
      with
      | Some t -> t
      | None -> raise Subtle
    in
    let sites_of t =
      List.filter
        (fun (s : Ir.Shape.site) ->
          String.equal s.array l.array && Ir.Shape.emits t s)
        t.sites
    in
    let th = shape_of l.first_phase in
    let head = sites_of th in
    if head = [] then Some false
    else begin
      let boxes_of t sites acc =
        List.filter_map
          (fun (s : Ir.Shape.site) ->
            if Ir.Types.equal_access s.Ir.Shape.access acc then Ir.Shape.box t s
            else None)
          sites
      in
      let wboxes = boxes_of th head Ir.Types.Write in
      let covered b =
        match
          List.exists
            (fun w ->
              match Lattice.subset b w with
              | Lattice.Yes -> true
              | Lattice.No | Lattice.Unknown -> false)
            wboxes
        with
        | true -> Lattice.Yes
        | false ->
            (* definitely uncovered only when apart from every write *)
            if
              List.for_all
                (fun w ->
                  match Lattice.disjoint b w with
                  | Lattice.Yes -> true
                  | Lattice.No | Lattice.Unknown -> false)
                wboxes
            then Lattice.No
            else Lattice.Unknown
      in
      let all_covered boxes =
        List.fold_left
          (fun acc b -> Lattice.verdict_and acc (covered b))
          Lattice.Yes boxes
      in
      match all_covered (boxes_of th head Ir.Types.Read) with
      | Lattice.No -> Some false (* head phase reads an unwritten cell *)
      | Lattice.Unknown -> raise Subtle
      | Lattice.Yes ->
          let rec tail k =
            if k > l.last_phase then Some true
            else
              let t = shape_of k in
              let boxes =
                List.filter_map (Ir.Shape.box t) (sites_of t)
              in
              match all_covered boxes with
              | Lattice.Yes -> tail (k + 1)
              | Lattice.No -> Some false
              | Lattice.Unknown -> raise Subtle
          in
          tail (l.first_phase + 1)
    end
  with Subtle | Lattice.Overflow -> None

let write_covers_epoch (lcg : Lcg.t) (l : Distribution.layout) =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> write_covers_epoch_enum lcg l
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match write_covers_epoch_symbolic lcg l with
      | Some b -> b
      | None ->
          Lattice.note_fallback ~stage:"comm" (l.array ^ " write-covers");
          write_covers_epoch_enum lcg l)

(* The frontier strips of a halo'd layout: each block owner's edge
   cells, addressed to the neighbouring blocks' owners.  Emitted as
   per-block ranges - the strips are contiguous by construction, so no
   per-address walk is needed. *)
let strip_ranges (plan : Distribution.plan) (l : Distribution.layout) size =
  if l.halo <= 0 || l.halo >= size then []
  else begin
    let ranges = ref [] in
    let b = l.block in
    let w = min l.halo b in
    let nblocks = ((size - l.base) + b - 1) / b in
    for blk = 0 to nblocks - 1 do
      let start = l.base + (blk * b) in
      let owner = Distribution.proc_of plan l ~addr:start in
      let strip lo hi target =
        if target >= 0 && target < plan.h && target <> owner then begin
          let lo = max 0 lo and hi = min (size - 1) hi in
          if lo <= hi then ranges := (owner, target, (lo, hi)) :: !ranges
        end
      in
      if start + b < size then
        strip (start + b - w) (start + b - 1)
          (Distribution.proc_of plan l ~addr:(start + b));
      if blk > 0 || l.base > 0 then
        strip start (start + w - 1)
          (Distribution.proc_of plan l ~addr:(start - 1))
    done;
    !ranges
  end

let strip_messages plan l size = aggregate_ranges (strip_ranges plan l size)

(* Redistribution traffic between two layouts: in closed form, the
   owner maps of both layouts are walked as maximal constant-owner
   segments and their refinement yields per-(src, dst) ranges directly;
   the per-address loop survives as the oracle (and the fallback when
   a segment walk exhausts its budget, e.g. CYCLIC(1) on a huge
   array). *)
let redistribution_messages_enum (plan : Distribution.plan) prev next size =
  let triples = ref [] in
  for a = 0 to size - 1 do
    let po = Distribution.proc_of plan prev ~addr:a in
    let no = Distribution.proc_of plan next ~addr:a in
    if po <> no then triples := (po, no, a) :: !triples
  done;
  aggregate !triples

let redistribution_messages_symbolic (plan : Distribution.plan) prev next size
    =
  let segs l =
    Lattice.Own.segments
      (Distribution.own_of ~h:plan.h l)
      ~lo:0 ~hi:(size - 1) ~budget:Owncount.budget
  in
  match (segs prev, segs next) with
  | Some sp, Some sn ->
      (* refine the two segmentations *)
      let ranges = ref [] in
      let rec walk sp sn =
        match (sp, sn) with
        | [], [] -> ()
        | (lo1, hi1, p1) :: tp, (lo2, hi2, p2) :: tn ->
            let lo = max lo1 lo2 in
            let hi = min hi1 hi2 in
            if lo <= hi && p1 <> p2 then ranges := (p1, p2, (lo, hi)) :: !ranges;
            if hi1 <= hi2 then
              walk tp (if hi1 = hi2 then tn else sn)
            else walk sp tn
        | _, [] | [], _ -> ()
      in
      walk sp sn;
      Some (aggregate_ranges !ranges)
  | _ -> None

let redistribution_messages plan prev next size =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> redistribution_messages_enum plan prev next size
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match redistribution_messages_symbolic plan prev next size with
      | Some ms -> ms
      | None ->
          Lattice.note_fallback ~stage:"comm"
            (prev.Distribution.array ^ " redistribution walk");
          redistribution_messages_enum plan prev next size)

(* Arrays a phase writes (with at least one event). *)
let phase_writes_enum (lcg : Lcg.t) ph =
  let written = Hashtbl.create 4 in
  Ir.Enumerate.iter lcg.prog lcg.env ph
    ~f:(fun ~par:_ ~array ~addr:_ access ~work:_ ->
      match access with
      | Ir.Types.Write -> Hashtbl.replace written array ()
      | Ir.Types.Read -> ());
  Hashtbl.fold (fun a () acc -> a :: acc) written [] |> List.sort_uniq compare

let phase_writes (lcg : Lcg.t) ph =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> phase_writes_enum lcg ph
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match Ir.Shape.of_phase lcg.prog lcg.env ph with
      | Some t ->
          List.sort_uniq compare
            (List.filter_map
               (fun (s : Ir.Shape.site) ->
                 match s.access with
                 | Ir.Types.Write when Ir.Shape.emits t s -> Some s.array
                 | Ir.Types.Write | Ir.Types.Read -> None)
               t.sites)
      | None ->
          Lattice.note_fallback ~stage:"comm"
            ("phase " ^ ph.Ir.Types.phase_name ^ " writes");
          phase_writes_enum lcg ph)

let generate ?on_error (lcg : Lcg.t) (plan : Distribution.plan) : schedule =
  let array_size lcg a = array_size ?on_error lcg a in
  let events = ref [] in
  let n_phases = List.length lcg.prog.phases in
  List.iteri
    (fun k _ph ->
      (* Redistributions entering epochs that start at phase k; for a
         repeating program the wrap from the last phase back into the
         first epoch (before_phase = 0) is a boundary too. *)
      List.iter
        (fun (l : Distribution.layout) ->
          if l.first_phase = k && (k > 0 || lcg.prog.repeats) then
            match
              Distribution.layout_for plan ~array:l.array
                ~phase_idx:((k - 1 + n_phases) mod n_phases)
            with
            | Some prev when prev <> l && not (write_covers_epoch lcg l) -> (
                match array_size lcg l.array with
                | None -> () (* size unevaluable: reported, events omitted *)
                | Some size ->
                    let messages = redistribution_messages plan prev l size in
                    if messages <> [] then
                      events :=
                        Redistribute
                          { array = l.array; before_phase = k; messages }
                        :: !events;
                    (* a second round initializes the ghost replicas from
                       the now-current owners (order matters: strips read
                       the owners' post-copy-in data) *)
                    let strips = strip_messages plan l size in
                    if strips <> [] then
                      events :=
                        Redistribute
                          { array = l.array; before_phase = k; messages = strips }
                        :: !events)
            | _ -> ())
        plan.layouts;
      (* Frontier updates after phases writing halo'd arrays. *)
      let ph = List.nth lcg.prog.phases k in
      List.iter
        (fun array ->
          match Distribution.layout_for plan ~array ~phase_idx:k with
          | Some l when l.halo > 0 && List.length lcg.prog.phases > 1 -> (
              match array_size lcg array with
              | None -> ()
              | Some size ->
                  let messages = strip_messages plan l size in
                  if messages <> [] then
                    events :=
                      Frontier { array; after_phase = k; messages }
                      :: !events)
          | _ -> ())
        (phase_writes lcg ph))
    lcg.prog.phases;
  List.rev !events

let event_messages = function
  | Redistribute { messages; _ } | Frontier { messages; _ } -> messages

let total_words s =
  List.fold_left
    (fun acc e ->
      List.fold_left (fun acc m -> acc + m.words) acc (event_messages e))
    0 s

let message_count s =
  List.fold_left (fun acc e -> acc + List.length (event_messages e)) 0 s

let redistributions s =
  List.filter (function Redistribute _ -> true | Frontier _ -> false) s

let frontiers s =
  List.filter (function Frontier _ -> true | Redistribute _ -> false) s

let pp_message ppf m =
  Format.fprintf ppf "put %d -> %d: %d words in %d ranges [%s]" m.src m.dst
    m.words (List.length m.ranges)
    (String.concat "; "
       (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) m.ranges))

let pp ppf (s : schedule) =
  List.iter
    (fun e ->
      (match e with
      | Redistribute { array; before_phase; messages } ->
          Format.fprintf ppf "@[<v 2>redistribute %s before phase %d (%d msgs):@,"
            array before_phase (List.length messages);
          List.iter (fun m -> Format.fprintf ppf "%a@," pp_message m) messages
      | Frontier { array; after_phase; messages } ->
          Format.fprintf ppf "@[<v 2>frontier %s after phase %d (%d msgs):@,"
            array after_phase (List.length messages);
          List.iter (fun m -> Format.fprintf ppf "%a@," pp_message m) messages);
      Format.fprintf ppf "@]@,")
    s
