open Locality
open Ilp
module Comm = Dsmsim.Comm
module Machine = Dsmsim.Machine
module Compile = Codegen.Compile

exception Unsupported = Compile.Unsupported

type result = {
  h : int;
  rounds : int;
  wall_par : float;
  wall_seq : float;
  speedup : float;
  busy : float array;
  sched_messages : int;
  sched_words : int;
  expected_messages : int;
  expected_words : int;
  remote_gets : int;
  remote_puts : int;
  local_accesses : int;
  reads_checked : int;
  stale : int;
  stale_examples : (string * int * int) list;
  content_cells : int;
  content_mismatches : int;
  arrays_compared : string list;
  arrays_skipped : string list;
  errors : string list;
}

let schedule_parity r =
  r.sched_messages = r.expected_messages && r.sched_words = r.expected_words

let ok r =
  schedule_parity r && r.stale = 0 && r.content_mismatches = 0
  && r.errors = []

(* Deterministic per-write salt, identical in the sequential replay and
   the parallel run, so value equality means the same write reached the
   same cell. *)
let stamp_value ~round ~k ~site ~addr =
  float_of_int ((((round * 67) + k) * 131) + (site * 8191) + (addr * 3) + 1)

let spin_work spin work =
  if spin > 0 then begin
    let x = ref 0 in
    for i = 1 to work * spin do
      x := !x + i
    done;
    ignore (Sys.opaque_identity !x)
  end

let now () = Unix.gettimeofday ()

(* Replayed reads are recorded per (round, phase, parallel iteration)
   stream; within one stream the parallel run reads in exactly the
   replay's order (same closures, same nesting), so a per-stream cursor
   pairs each executed read with its sequential value. *)
let read_budget = 5_000_000

type job = Quit | Sweep of int * int  (* round, phase *)

type state = {
  lcg : Lcg.t;
  plan : Distribution.plan;
  rounds : int;
  spin : int;
  check_reads : bool;
  compiled : Compile.t array;
  shim : Shim.t;
  (* layout epoch per (phase, array); [None] covers both undistributed
     and privatized-in-this-phase arrays: replica-local access *)
  layout_tbl : (string, Distribution.layout option) Hashtbl.t array;
  sizes : (string * int) list;
  size_tbl : (string, int) Hashtbl.t;
  written_by_phase : string list array;
  expected : (int * int * int, float array) Hashtbl.t;
  cursors : (int * int * int, int ref) Hashtbl.t array;  (* per domain *)
  reads_checked : int array;
  stale : int array;
  stale_examples : (string * int * int) list ref array;
  worker_errors : string option array;
  start : Shim.Barrier.t;
  fin : Shim.Barrier.t;
  sync : Shim.Barrier.t;
  mutable job : job;
}

(* A worker that dies mid-sweep poisons every barrier so nobody parks
   forever; the recorded error marks the whole run unusable. *)
let record_failure st p e =
  if st.worker_errors.(p) = None then
    st.worker_errors.(p) <- Some (Printexc.to_string e);
  Shim.Barrier.poison st.start;
  Shim.Barrier.poison st.fin;
  Shim.Barrier.poison st.sync

let proc_of_addr st (l : Distribution.layout) addr =
  Distribution.proc_of st.plan l ~addr

(* Same halo-local read predicate as the simulator and the validator:
   a non-owned read is served by the local ghost replica when the array
   is fully replicated (halo >= size) or a [min halo block] window
   around an owned block covers the address. *)
let halo_local st (l : Distribution.layout) ~array ~addr ~me =
  l.halo > 0
  &&
  let w = min l.halo l.block in
  (match Hashtbl.find_opt st.size_tbl array with
  | Some s -> l.halo >= s
  | None -> false)
  || proc_of_addr st l (addr - w) = me
  || proc_of_addr st l (addr + w) = me

let key_of ~round ~k ~par =
  (round, k, match par with Some i -> i | None -> -1)

(* Handlers for processor [me]'s share of phase [k] in [round]. *)
let par_handlers st ~me ~round ~k : Compile.handlers =
  let c = st.shim.counters.(me) in
  let own array = Shim.window st.shim ~proc:me ~array in
  let layout array = Hashtbl.find st.layout_tbl.(k) array in
  let cursors = st.cursors.(me) in
  let check ~par ~array ~addr v =
    let key = key_of ~round ~k ~par in
    match Hashtbl.find_opt st.expected key with
    | None -> ()
    | Some arr ->
        let cur =
          match Hashtbl.find_opt cursors key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.add cursors key r;
              r
        in
        if !cur < Array.length arr then begin
          let want = arr.(!cur) in
          incr cur;
          st.reads_checked.(me) <- st.reads_checked.(me) + 1;
          if v <> want then begin
            st.stale.(me) <- st.stale.(me) + 1;
            let ex = st.stale_examples.(me) in
            if List.length !ex < 4 then ex := (array, addr, k) :: !ex
          end
        end
  in
  {
    read =
      (fun ~par ~array ~addr ->
        let v =
          match layout array with
          | None ->
              c.local <- c.local + 1;
              Bigarray.Array1.get (own array) addr
          | Some l ->
              let owner = proc_of_addr st l addr in
              if owner = me || halo_local st l ~array ~addr ~me then begin
                c.local <- c.local + 1;
                Bigarray.Array1.get (own array) addr
              end
              else begin
                c.gets <- c.gets + 1;
                Bigarray.Array1.get (Shim.window st.shim ~proc:owner ~array) addr
              end
        in
        if st.check_reads then check ~par ~array ~addr v;
        v);
    write =
      (fun ~par:_ ~array ~addr ~v ->
        Bigarray.Array1.set (own array) addr v;
        match layout array with
        | None -> c.local <- c.local + 1
        | Some l ->
            let owner = proc_of_addr st l addr in
            if owner <> me then begin
              Bigarray.Array1.set
                (Shim.window st.shim ~proc:owner ~array)
                addr v;
              c.puts <- c.puts + 1
            end
            else c.local <- c.local + 1);
    stamp = (fun ~site ~addr -> stamp_value ~round ~k ~site ~addr);
    work =
      (fun ~par:_ ~work ->
        c.workc <- c.workc + work;
        spin_work st.spin work);
    sync = (fun () -> Shim.Barrier.await st.sync);
  }

let run_share st ~me ~round ~k =
  let t0 = now () in
  let cp = st.compiled.(k) in
  let slots = Array.make (max 1 cp.nslots) 0 in
  cp.sweep ~slots ~me:(Some me) (par_handlers st ~me ~round ~k);
  let c = st.shim.counters.(me) in
  c.busy <- c.busy +. (now () -. t0)

let worker st p =
  let rec loop () =
    Shim.Barrier.await st.start;
    if st.worker_errors.(p) <> None then Shim.Barrier.await st.fin
    else
      match st.job with
      | Quit -> Shim.Barrier.await st.fin
      | Sweep (round, k) ->
          (try run_share st ~me:p ~round ~k
           with e -> record_failure st p e);
          Shim.Barrier.await st.fin;
          loop ()
  in
  loop ()

(* The executor as a {!Dsmsim.Machine.BACKEND}: [comm] performs the
   scheduled range copies on the main thread while every domain is
   parked at the barrier, [phase] releases the fleet for one sweep.
   Times are measured seconds (where the simulator's are priced
   cycles); [phase] contributes nothing to the serialized baseline -
   the replay measures that separately. *)
module B = struct
  type t = state

  let words_of messages =
    List.fold_left (fun a (m : Comm.message) -> a + m.words) 0 messages

  let comm st ~round:_ ~k = function
    | Comm.Redistribute { array; before_phase = _; messages } ->
        let t0 = now () in
        List.iter (Shim.deliver st.shim ~array) messages;
        Some
          {
            Machine.array;
            kind = Machine.Redistribution;
            before_phase = k;
            words = words_of messages;
            time = now () -. t0;
          }
    | Comm.Frontier { array; after_phase = _; messages } ->
        if List.mem array st.written_by_phase.(k) then begin
          let t0 = now () in
          List.iter (Shim.deliver st.shim ~array) messages;
          Some
            {
              Machine.array;
              kind = Machine.Frontier_update;
              before_phase = k + 1;
              words = words_of messages;
              time = now () -. t0;
            }
        end
        else None

  let sums st =
    Array.fold_left
      (fun (l, r, w) (c : Shim.counters) ->
        (l + c.local, r + c.gets + c.puts, w + c.workc))
      (0, 0, 0) st.shim.counters

  let phase st ~round ~k (ph : Ir.Types.phase) =
    let l0, r0, w0 = sums st in
    st.job <- Sweep (round, k);
    let t0 = now () in
    Shim.Barrier.await st.start;
    (try run_share st ~me:0 ~round ~k with e -> record_failure st 0 e);
    Shim.Barrier.await st.fin;
    let dt = now () -. t0 in
    let l1, r1, w1 = sums st in
    ( {
        Machine.name = ph.Ir.Types.phase_name;
        local = l1 - l0;
        remote = r1 - r0;
        compute = w1 - w0;
        time = dt;
      },
      0.0 )

  let per_proc st =
    Array.map
      (fun (c : Shim.counters) ->
        { Machine.compute_time = c.busy; access_time = 0.0 })
      st.shim.counters
end

module D = Machine.Driver (B)

let execute ?(rounds = 1) ?(spin = 0) ?(check_reads = true) (lcg : Lcg.t)
    (plan : Distribution.plan) : result =
  let errors = ref [] in
  let on_error m = errors := m :: !errors in
  let h = plan.h in
  let phases = lcg.prog.phases in
  let nphases = List.length phases in
  let sched = Comm.generate ~on_error lcg plan in
  let compiled = Array.of_list (Compile.program lcg.prog lcg.env plan) in
  let sizes =
    List.map
      (fun (d : Ir.Types.array_decl) ->
        match Comm.array_size ~on_error lcg d.name with
        | Some s -> (d.name, s)
        | None ->
            raise (Unsupported ("size of " ^ d.name ^ " does not evaluate")))
      lcg.prog.arrays
  in
  let size_tbl = Hashtbl.create 8 in
  List.iter (fun (n, s) -> Hashtbl.replace size_tbl n s) sizes;
  let layout_tbl =
    Array.init nphases (fun k ->
        let t = Hashtbl.create 8 in
        List.iter
          (fun (d : Ir.Types.array_decl) ->
            let l =
              if List.mem (k, d.name) plan.privatized then None
              else Distribution.layout_for plan ~array:d.name ~phase_idx:k
            in
            Hashtbl.replace t d.name l)
          lcg.prog.arrays;
        t)
  in
  (* -- sequential replay: golden contents, expected reads, written sets *)
  let golden = Hashtbl.create 8 in
  List.iter
    (fun (n, s) -> Hashtbl.replace golden n (Array.make (max 1 s) 0.0))
    sizes;
  (* cells written during the final layout epoch (last round): the ones
     whose freshest value the epoch's owner is guaranteed to hold *)
  let final_mask = Hashtbl.create 8 in
  let in_final_epoch k array =
    match Hashtbl.find layout_tbl.(nphases - 1) array with
    | None -> false
    | Some lf -> (
        match Hashtbl.find layout_tbl.(k) array with
        | Some l -> l.Distribution.first_phase = lf.Distribution.first_phase
        | None -> false)
  in
  List.iter
    (fun (n, s) -> Hashtbl.replace final_mask n (Bytes.make (max 1 s) '\000'))
    sizes;
  let expected_acc : (int * int * int, float list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let expected_len = ref 0 in
  let written_by_phase = Array.make nphases [] in
  let replay_handlers ~round ~k : Compile.handlers =
    let cell array addr =
      let g = Hashtbl.find golden array in
      if addr < 0 || addr >= Array.length g then
        raise
          (Unsupported (Printf.sprintf "%s(%d) out of bounds" array addr));
      g
    in
    {
      read =
        (fun ~par ~array ~addr ->
          let v = (cell array addr).(addr) in
          if check_reads && !expected_len < read_budget then begin
            let key = key_of ~round ~k ~par in
            let r =
              match Hashtbl.find_opt expected_acc key with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add expected_acc key r;
                  r
            in
            r := v :: !r;
            incr expected_len
          end;
          v);
      write =
        (fun ~par:_ ~array ~addr ~v ->
          (cell array addr).(addr) <- v;
          if not (List.mem array written_by_phase.(k)) then
            written_by_phase.(k) <- array :: written_by_phase.(k);
          if round = rounds - 1 && in_final_epoch k array then
            Bytes.set (Hashtbl.find final_mask array) addr '\001');
      stamp = (fun ~site ~addr -> stamp_value ~round ~k ~site ~addr);
      work = (fun ~par:_ ~work -> spin_work spin work);
      sync = (fun () -> ());
    }
  in
  let t0 = now () in
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun k cp ->
        let slots = Array.make (max 1 cp.Compile.nslots) 0 in
        cp.Compile.sweep ~slots ~me:None (replay_handlers ~round ~k))
      compiled
  done;
  let wall_seq = now () -. t0 in
  let expected = Hashtbl.create (Hashtbl.length expected_acc) in
  Hashtbl.iter
    (fun key r -> Hashtbl.replace expected key (Array.of_list (List.rev !r)))
    expected_acc;
  (* -- expected schedule: the walk's gating plus the written filter *)
  let exp_msgs = ref 0 and exp_words = ref 0 in
  Machine.walk ~rounds ~sched ~phases
    ~step:(fun ~round:_ ~k:_ _ ~incoming ~outgoing ->
      let count messages =
        List.iter
          (fun (m : Comm.message) ->
            incr exp_msgs;
            exp_words := !exp_words + m.words)
          messages
      in
      List.iter
        (function
          | Comm.Redistribute { messages; _ } -> count messages
          | Comm.Frontier _ -> ())
        incoming;
      List.iter
        (function
          | Comm.Frontier { array; after_phase; messages } ->
              if List.mem array written_by_phase.(after_phase) then
                count messages
          | Comm.Redistribute _ -> ())
        outgoing);
  (* -- parallel run on h domains (this thread is processor 0) *)
  let st =
    {
      lcg;
      plan;
      rounds;
      spin;
      check_reads;
      compiled;
      shim = Shim.create ~h sizes;
      layout_tbl;
      sizes;
      size_tbl;
      written_by_phase;
      expected;
      cursors = Array.init h (fun _ -> Hashtbl.create 64);
      reads_checked = Array.make h 0;
      stale = Array.make h 0;
      stale_examples = Array.init h (fun _ -> ref []);
      worker_errors = Array.make h None;
      start = Shim.Barrier.create h;
      fin = Shim.Barrier.create h;
      sync = Shim.Barrier.create h;
      job = Quit;
    }
  in
  let domains =
    List.init (h - 1) (fun i -> Domain.spawn (fun () -> worker st (i + 1)))
  in
  let t0 = now () in
  let _run = D.drive ~rounds ~sched ~phases ~h st in
  let wall_par = now () -. t0 in
  st.job <- Quit;
  Shim.Barrier.await st.start;
  Shim.Barrier.await st.fin;
  List.iter Domain.join domains;
  Array.iter
    (function Some e -> errors := e :: !errors | None -> ())
    st.worker_errors;
  (* -- content parity under the final epoch's owners *)
  let content_cells = ref 0 and content_mismatches = ref 0 in
  let compared = ref [] and skipped = ref [] in
  List.iter
    (fun (name, size) ->
      match Hashtbl.find layout_tbl.(nphases - 1) name with
      | None -> skipped := name :: !skipped
      | Some l ->
          let g = Hashtbl.find golden name in
          let mask = Hashtbl.find final_mask name in
          let any = ref false in
          for a = 0 to size - 1 do
            if Bytes.get mask a = '\001' then begin
              any := true;
              incr content_cells;
              let owner = Distribution.proc_of plan l ~addr:a in
              let w = Shim.window st.shim ~proc:owner ~array:name in
              if Bigarray.Array1.get w a <> g.(a) then
                incr content_mismatches
            end
          done;
          if !any then compared := name :: !compared
          else skipped := name :: !skipped)
    sizes;
  let sum f = Array.fold_left (fun a c -> a + f c) 0 st.shim.counters in
  let wall_seq = if wall_seq <= 0.0 then epsilon_float else wall_seq in
  let wall_par = if wall_par <= 0.0 then epsilon_float else wall_par in
  {
    h;
    rounds;
    wall_par;
    wall_seq;
    speedup = wall_seq /. wall_par;
    busy = Array.map (fun (c : Shim.counters) -> c.busy) st.shim.counters;
    sched_messages = sum (fun c -> c.sched_msgs);
    sched_words = sum (fun c -> c.sched_words);
    expected_messages = !exp_msgs;
    expected_words = !exp_words;
    remote_gets = sum (fun c -> c.gets);
    remote_puts = sum (fun c -> c.puts);
    local_accesses = sum (fun c -> c.local);
    reads_checked = Array.fold_left ( + ) 0 st.reads_checked;
    stale = Array.fold_left ( + ) 0 st.stale;
    stale_examples =
      List.concat_map (fun r -> List.rev !r) (Array.to_list st.stale_examples);
    content_cells = !content_cells;
    content_mismatches = !content_mismatches;
    arrays_compared = List.rev !compared;
    arrays_skipped = List.rev !skipped;
    errors = List.rev !errors;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>H=%d rounds=%d  wall_par=%.4fs wall_seq=%.4fs speedup=%.2fx@,\
     messages %d/%d words %d/%d (measured/schedule)%s@,\
     direct: %d gets, %d puts, %d local@,\
     reads checked %d, stale %d; contents: %d cells, %d mismatches \
     (%d arrays%s)@]"
    r.h r.rounds r.wall_par r.wall_seq r.speedup r.sched_messages
    r.expected_messages r.sched_words r.expected_words
    (if schedule_parity r then "" else "  PARITY MISMATCH")
    r.remote_gets r.remote_puts r.local_accesses r.reads_checked r.stale
    r.content_cells r.content_mismatches
    (List.length r.arrays_compared)
    (match r.arrays_skipped with
    | [] -> ""
    | l -> ", skipped " ^ String.concat " " l);
  List.iter
    (fun (a, x, k) ->
      Format.fprintf ppf "@,  stale %s(%d) in phase %d" a x k)
    r.stale_examples;
  List.iter (fun e -> Format.fprintf ppf "@,  error: %s" e) r.errors
