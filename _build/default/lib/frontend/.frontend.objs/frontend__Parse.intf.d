lib/frontend/parse.mli: Ir
