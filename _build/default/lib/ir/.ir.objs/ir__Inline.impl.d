lib/ir/inline.ml: Expr Linearize List String Symbolic Types
