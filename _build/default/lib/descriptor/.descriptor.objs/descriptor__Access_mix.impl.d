lib/descriptor/access_mix.ml: Format Ir
