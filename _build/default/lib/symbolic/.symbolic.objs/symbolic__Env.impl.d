lib/symbolic/env.ml: Expr Format List Map Qnum String
