(** Hash-consed symbolic expressions in canonical sum-of-monomials form.

    The expression class covers everything the paper's descriptors need:
    polynomials over parameters and loop indices with rational
    coefficients and [2^e] factors ([e] itself an expression), e.g.
    [2*P*Q], [P * 2^(-L)], [J * 2^(L-1)], [(P-2) * 2^(-L) + 1].  Exact
    and floor/ceil division are supported; divisions that cannot be
    reduced are kept as opaque atoms so normalization never loses
    information.

    Normal form: a sorted list of (monomial, rational coefficient)
    pairs; a monomial is a sorted list of (atom, integer exponent)
    pairs; all [2^e] factors of a monomial are fused into a single
    [Pow2] atom whose exponent has no constant term (the constant is
    folded into the coefficient).

    Values are {e interned}: within one intern generation, structurally
    equal expressions are physically equal, so [equal] is O(1) and every
    value carries a stable structural [digest] suitable for cache keys.
    [Probe] supplies the randomized fallback for semantic equalities the
    rewrite rules cannot see. *)

type t
(** Abstract; construct via the functions below.  Every value carries a
    unique id and a precomputed structural hash. *)

(** {1 Identity} *)

val id : t -> int
(** Unique per interned value, monotonically increasing, never reused
    (even across {!intern_reset}).  Ids depend on construction history;
    never persist them - use {!digest} for stable keys. *)

val digest : t -> int
(** Precomputed structural hash: deterministic across processes and
    intern generations (depends only on the term, not on id order). *)

val equal : t -> t -> bool
(** Physical equality, with a hash-gated structural fallback that only
    fires for duplicates surviving an {!intern_reset}.  Agrees with
    {!structural_equal} on all inputs. *)

val compare : t -> t -> int
(** Total order identical to {!structural_compare} (the historical
    structural ordering), short-circuiting on physical equality. *)

val structural_equal : t -> t -> bool
val structural_compare : t -> t -> int
(** Pure structural reference implementations (no interning shortcuts);
    the qcheck suite pins [equal]/[compare] against these. *)

(** {1 Intern state} *)

val intern_size : unit -> int
(** Number of live interned expressions in the current generation. *)

val intern_reset : unit -> unit
(** Drop the intern table (pool workers call this per job so intern
    state stays bounded and history-free).  The id counter is {e not}
    reset: expressions created before the reset remain valid and compare
    correctly against post-reset values, they just lose sharing. *)

(** {1 Constructors} *)

val zero : t
val one : t
val int : int -> t
val q : Qnum.t -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Qnum.t -> t -> t
val sum : t list -> t
val prod : t list -> t

val pow2 : t -> t
(** [pow2 e] is [2^e]. *)

val div : t -> t -> t
(** Exact division.  Always reduces when the divisor is a single
    monomial (negative exponents are allowed); otherwise attempts
    term-wise reduction and falls back to an opaque-division atom. *)

val floor_div : t -> t -> t
val ceil_div : t -> t -> t

(** {1 Inspection} *)

val is_zero : t -> bool

val to_q : t -> Qnum.t option
(** [Some c] iff the expression is the constant [c]. *)

val to_int : t -> int option

val const_part : t -> Qnum.t
(** Coefficient of the empty monomial. *)

val vars : t -> string list
(** All variables occurring anywhere (sorted, deduplicated). *)

val mem_var : string -> t -> bool

val linear_in : string -> t -> (t * t) option
(** [linear_in v e = Some (a, b)] when [e = a*v + b] with [v] occurring
    nowhere in [a] or [b]; [None] if [e] is non-linear in [v]. *)

(** {1 Transformation} *)

val subst : string -> t -> t -> t
(** [subst v by e] replaces every occurrence of variable [v] in [e]
    (including inside [Pow2] exponents and division atoms) with [by],
    then renormalizes. *)

val subst_env : (string * t) list -> t -> t

(** {1 Evaluation} *)

exception Non_integral of string
(** Raised when an integer is required (a [Pow2] exponent or a final
    [eval_int]) but the value is fractional. *)

val eval : (string -> Qnum.t) -> t -> Qnum.t
(** @raise Non_integral if a [Pow2] exponent evaluates to a non-integer.
    @raise Not_found if a variable is unbound. *)

val eval_int : (string -> Qnum.t) -> t -> int
(** @raise Non_integral if the result is fractional. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
