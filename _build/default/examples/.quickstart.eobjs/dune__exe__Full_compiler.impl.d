examples/full_compiler.ml: Array Codegen Core Dsmsim Format Frontend Ir List Symbolic
