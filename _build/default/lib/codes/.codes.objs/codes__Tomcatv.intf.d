lib/codes/tomcatv.mli: Assume Env Ir Symbolic
