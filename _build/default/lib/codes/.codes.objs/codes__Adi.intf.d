lib/codes/adi.mli: Assume Env Ir Symbolic
