(** Chain summaries (paper, Sec. 4.3 (a)).

    A chain is a maximal run of L-connected LCG nodes; by construction
    its phases cover a common data sub-region, so one data allocation
    placed before the chain's first phase serves them all.  This module
    materializes that claim: per chain, the concrete region each member
    covers, the common (union) region, the homogenized descriptor when
    the PDs fuse symbolically, and a coverage verdict - every member's
    region must lie within the chain region, and for non-degenerate
    chains the members' regions must agree up to the halo frontier. *)

open Descriptor

type member = {
  name : string;
  phase_idx : int;
  region_size : int;  (** distinct addresses the phase touches *)
}

type summary = {
  array : string;
  members : member list;
  chain_size : int;  (** distinct addresses over the whole chain *)
  max_member : int;
  homogenized : Pd.t option;
      (** pairwise-fused descriptor when every fuse step applied *)
  covers_alike : bool;
      (** every member covers at least 80% of the chain region - the
          "same data sub-region" property modulo boundary effects *)
}

val summaries : Lcg.t -> summary list
val pp : Format.formatter -> summary -> unit
