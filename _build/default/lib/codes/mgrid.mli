(** MGRID-like multigrid V-cycle slice: smooth on the fine grid,
    restrict fine -> coarse (stride-2 reads against stride-1 writes,
    so the balanced condition couples chunk sizes as [p_f = 2 p_c]),
    smooth on the coarse grid, and prolongate coarse -> fine.
    One-dimensional grids keep the strides front and center. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
(** [n] is the coarse size; the fine grid has [2n] points. *)
