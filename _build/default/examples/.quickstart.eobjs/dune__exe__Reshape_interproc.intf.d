examples/reshape_interproc.mli:
