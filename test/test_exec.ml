(* The real executor (library [exec]) against the analysis stack: for
   registry kernels, running the compiled program on OCaml domains must
   deliver exactly the messages the Comm schedule predicts, serve no
   stale reads (every executed read equals its sequential-replay
   value), and leave final-epoch array contents equal to the replay's
   in the owners' replicas. *)

open Symbolic

let pipeline name ~h =
  let e = Codes.Registry.find name in
  Probe.with_seed 701 (fun () ->
      Core.Artifact.clear_all ();
      Core.Pipeline.run e.program ~env:(e.env_of_size e.default_size) ~h)

let check_run name (r : Exec.Runner.result) =
  Alcotest.(check (list string)) (name ^ " errors") [] r.errors;
  Alcotest.(check int)
    (name ^ " scheduled messages match the Comm schedule")
    r.expected_messages r.sched_messages;
  Alcotest.(check int)
    (name ^ " scheduled words match the Comm schedule")
    r.expected_words r.sched_words;
  Alcotest.(check int) (name ^ " stale reads") 0 r.stale;
  Alcotest.(check int) (name ^ " content mismatches") 0 r.content_mismatches;
  Alcotest.check Alcotest.bool (name ^ " ok") true (Exec.Runner.ok r)

let test_kernel name h () =
  let t = pipeline name ~h in
  let r = Exec.Runner.execute t.Core.Pipeline.lcg t.Core.Pipeline.plan in
  check_run name r;
  Alcotest.check Alcotest.bool
    (name ^ " checked some reads")
    true (r.reads_checked > 0)

let test_rounds () =
  (* the steady state: wrap-around redistribution events join from the
     second traversal on, and parity must still hold *)
  let t = pipeline "jacobi2d" ~h:4 in
  let r =
    Exec.Runner.execute ~rounds:3 t.Core.Pipeline.lcg t.Core.Pipeline.plan
  in
  check_run "jacobi2d rounds=3" r;
  Alcotest.(check int) "rounds recorded" 3 r.rounds

let test_affine_shapes () =
  (* jacobi2d's subscripts and bounds live entirely in the affine
     fragment: nothing should fall back to expression interpretation *)
  let t = pipeline "jacobi2d" ~h:4 in
  let phs =
    Codegen.Compile.program t.Core.Pipeline.lcg.prog t.Core.Pipeline.lcg.env
      t.Core.Pipeline.plan
  in
  Alcotest.check Alcotest.bool "jacobi2d has phases" true (phs <> []);
  List.iter
    (fun (cp : Codegen.Compile.t) ->
      List.iter
        (function
          | Codegen.Compile.Opaque ->
              Alcotest.failf "opaque expression in %s" cp.phase_name
          | Codegen.Compile.Const _ | Codegen.Compile.Affine _ -> ())
        cp.shapes)
    phs

let test_opaque_still_runs () =
  (* tfft2's butterfly subscripts carry 2^l factors of a loop variable:
     the compiler must fall back to interpretation, and the executed
     result must still agree with replay and schedule *)
  let t = pipeline "tfft2" ~h:2 in
  let phs =
    Codegen.Compile.program t.Core.Pipeline.lcg.prog t.Core.Pipeline.lcg.env
      t.Core.Pipeline.plan
  in
  let opaque =
    List.exists
      (fun (cp : Codegen.Compile.t) ->
        List.exists (( = ) Codegen.Compile.Opaque) cp.shapes)
      phs
  in
  Alcotest.check Alcotest.bool "tfft2 exercises the opaque fallback" true
    opaque;
  let r = Exec.Runner.execute t.Core.Pipeline.lcg t.Core.Pipeline.plan in
  check_run "tfft2" r

let test_spin_speedup_fields () =
  let t = pipeline "matmul" ~h:2 in
  let r =
    Exec.Runner.execute ~spin:20 t.Core.Pipeline.lcg t.Core.Pipeline.plan
  in
  check_run "matmul spin" r;
  Alcotest.check Alcotest.bool "wall_par positive" true (r.wall_par > 0.0);
  Alcotest.check Alcotest.bool "wall_seq positive" true (r.wall_seq > 0.0);
  Alcotest.check Alcotest.bool "speedup positive" true (r.speedup > 0.0)

let kernels = [ "jacobi2d"; "matmul"; "adi"; "redblack"; "swim"; "trisolve" ]

let () =
  Alcotest.run "exec"
    [
      ( "kernels-h2",
        List.map
          (fun n -> Alcotest.test_case n `Quick (test_kernel n 2))
          kernels );
      ( "kernels-h4",
        List.map
          (fun n -> Alcotest.test_case n `Quick (test_kernel n 4))
          kernels );
      ( "protocol",
        [
          Alcotest.test_case "rounds" `Quick test_rounds;
          Alcotest.test_case "affine-shapes" `Quick test_affine_shapes;
          Alcotest.test_case "opaque-fallback" `Quick test_opaque_still_runs;
          Alcotest.test_case "spin-speedup" `Quick test_spin_speedup_fields;
        ] );
    ]
