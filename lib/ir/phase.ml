open Symbolic
open Types

type loop_info = { var : string; count : Expr.t; hi : Expr.t; parallel : bool }

type site = { ref_ : array_ref; phi : Expr.t; enclosing : string list }

type t = {
  prog : program;
  phase : phase;
  loops : loop_info list;
  par : loop_info option;
  sites : site list;
  assume : Assume.t;
}

exception Invalid_phase of string

(* Phase analysis is a pure function of the program and phase syntax
   (no environment, no probe stream), so results live in a non-volatile
   artifact store keyed on the structural pair.  The LCG builder
   re-analyzes every phase for every array of the program; with the
   cache each phase is walked once. *)
let cache : t Artifact.store = Artifact.store ~capacity:512 "phase.analyze"

let analyze_raw (prog : program) (ph : phase) : t =
  let ph = Normalize.phase ph in
  let loops = ref [] in
  let sites = ref [] in
  let rec walk enclosing = function
    | Assign a ->
        List.iter
          (fun (r : array_ref) ->
            let decl =
              try array_decl prog r.array
              with Not_found ->
                raise (Invalid_phase ("undeclared array " ^ r.array))
            in
            let phi = Linearize.address ~dims:decl.dims r.index in
            sites := { ref_ = r; phi; enclosing = List.rev enclosing } :: !sites)
          a.refs
    | Loop l ->
        loops :=
          { var = l.var; count = Expr.add l.hi Expr.one; hi = l.hi; parallel = l.parallel }
          :: !loops;
        List.iter (walk (l.var :: enclosing)) l.body
  in
  walk [] (Loop ph.nest);
  let loops = List.rev !loops in
  let sites = List.rev !sites in
  (match List.filter (fun l -> l.parallel) loops with
  | [] | [ _ ] -> ()
  | _ -> raise (Invalid_phase (ph.phase_name ^ ": more than one parallel loop")));
  let par = List.find_opt (fun l -> l.parallel) loops in
  let assume =
    List.fold_left
      (fun asm l -> Assume.add asm l.var (Assume.Expr_range (Expr.zero, l.hi)))
      prog.params loops
  in
  { prog; phase = ph; loops; par; sites; assume }

let analyze (prog : program) (ph : phase) : t =
  Artifact.find cache (phase_context_key prog ph) (fun () ->
      analyze_raw prog ph)

let key (t : t) = phase_context_key t.prog t.phase

let sites_of_array t name =
  List.filter (fun s -> String.equal s.ref_.array name) t.sites

let loop_index t v =
  let rec go i = function
    | [] -> raise Not_found
    | l :: _ when String.equal l.var v -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.loops

let par_count t = match t.par with Some l -> l.count | None -> Expr.one
