lib/core/pipeline.ml: Dsmsim Env Format Ilp Ir List Locality Printf Symbolic
