lib/locality/intra.ml: Descriptor Id Ir Symmetry
