lib/dsmsim/exec.mli: Format Ilp Lcg Locality
