lib/locality/balance.mli: Descriptor Env Expr Format Id Symbolic
