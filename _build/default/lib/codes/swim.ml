open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (8, 64)) ]

let nN = var "N"
let at r c = (r + (nN * c) : Expr.t)

let phase_calc1 =
  phase "CALC1"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:8
               [
                 read "P" [ at (var "r") (var "c") ];
                 read "P" [ at (var "r") (var "c" - int 1) ];
                 read "U" [ at (var "r") (var "c") ];
                 read "U" [ at (var "r" - int 1) (var "c") ];
                 write "CU" [ at (var "r") (var "c") ];
               ];
             assign ~work:8
               [
                 read "P" [ at (var "r") (var "c") ];
                 read "V" [ at (var "r") (var "c") ];
                 read "V" [ at (var "r") (var "c" - int 1) ];
                 write "CV" [ at (var "r") (var "c") ];
               ];
           ];
       ])

let phase_calc2 =
  phase "CALC2"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:10
               [
                 read "CU" [ at (var "r") (var "c") ];
                 read "CU" [ at (var "r") (var "c" + int 1) ];
                 read "CV" [ at (var "r") (var "c") ];
                 read "CV" [ at (var "r" + int 1) (var "c") ];
                 read "P" [ at (var "r") (var "c") ];
                 write "PNEW" [ at (var "r") (var "c") ];
               ];
           ];
       ])

let phase_calc3 =
  phase "CALC3"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:3
               [
                 read "PNEW" [ at (var "r") (var "c") ];
                 write "P" [ at (var "r") (var "c") ];
                 write "U" [ at (var "r") (var "c") ];
                 write "V" [ at (var "r") (var "c") ];
               ];
           ];
       ])

let program =
  program ~repeats:true ~name:"swim" ~params
    ~arrays:
      [
        array "U" [ nN * nN ];
        array "V" [ nN * nN ];
        array "P" [ nN * nN ];
        array "CU" [ nN * nN ];
        array "CV" [ nN * nN ];
        array "PNEW" [ nN * nN ];
      ]
    [ phase_calc1; phase_calc2; phase_calc3 ]

let env ~n = Env.of_list [ ("N", n) ]
