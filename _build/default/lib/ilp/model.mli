(** The integer-programming model of Table 2, generated from an LCG.

    One variable [p_k] per phase (the paper writes one per
    (phase, array) pair plus affinity equalities [p_k1 = p_k2]; folding
    them is the same model with the affinity rows eliminated).  Four
    constraint families:

    - {b locality}: for every L edge of every array graph, the balanced
      relation [a p_k = b p_g + c];
    - {b load balance}: [1 <= p_k <= ceil(n_k / H)];
    - {b storage}: for every shifted distance,
      [delta_P * H * p_k <= Delta_d]; for every reverse distance,
      [delta_P * H * p_k <= Delta_r / 2];
    - {b affinity}: implicit (single variable per phase).

    Constraints carry both the symbolic form (for reproducing the
    printed Table 2) and concrete coefficients under the LCG's
    environment (for solving). *)

open Symbolic

type locality = {
  array : string;
  k : int;  (** phase index *)
  g : int;
  a : Expr.t;
  b : Expr.t;
  c : Expr.t;  (** a p_k = b p_g + c *)
  ai : int;
  bi : int;
  ci : int;
}

type bound = { k : int; hi : int; hi_expr : Expr.t }

type storage = {
  array : string;
  k : int;
  kind : [ `Shifted | `Reverse ];
  coeff : int;  (** delta_P * H *)
  coeff_expr : Expr.t;
  limit : int;
  limit_expr : Expr.t;  (** Delta_d, or Delta_r / 2 *)
}

type t = {
  lcg : Locality.Lcg.t;
  n_phases : int;
  locality : locality list;
  bounds : bound list;
  storage : storage list;
}

val of_lcg : Locality.Lcg.t -> t

val to_lp : t -> objective:Qnum.t array -> Lp.problem
(** Linear relaxation with the given objective over the [p_k]; the
    locality rows become equalities, bounds and storage become
    inequalities. *)

val pp : Format.formatter -> t -> unit
(** Renders the model in the layout of Table 2. *)
