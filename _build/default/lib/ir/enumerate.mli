(** Concrete access enumeration: the ground-truth oracle.

    Directly interprets a phase's loop nest under a concrete parameter
    environment, producing every (array, flat address, access) event in
    execution order.  Descriptor construction, coalescing, iteration
    descriptors and the locality theorems are all validated against this
    oracle in the test suite, and the DSM simulator uses it to replay
    memory traffic. *)

open Symbolic
open Types

val iter :
  program ->
  Env.t ->
  phase ->
  f:(par:int option -> array:string -> addr:int -> access -> work:int -> unit) ->
  unit
(** [par] is the current normalized parallel-loop iteration (or [None]
    when the phase has no parallel loop or the site is outside it).
    [work] is the owning statement's abstract cost, reported once per
    statement execution on its first reference (0 on subsequent refs of
    the same statement instance). *)

val addresses :
  program -> Env.t -> phase -> array:string -> (int * access) list
(** All events for one array, execution order (with duplicates). *)

val address_set : program -> Env.t -> phase -> array:string -> (int, unit) Hashtbl.t

val iteration_addresses :
  program -> Env.t -> phase -> array:string -> par:int -> (int * access) list
(** Events of one parallel iteration only. *)
