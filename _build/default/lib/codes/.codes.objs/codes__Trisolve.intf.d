lib/codes/trisolve.mli: Assume Env Ir Symbolic
