type atom =
  | Var of string
  | Pow2 of t
  | Floor_div of t * t
  | Ceil_div of t * t
  | Opaque_div of t * t

and mono = (atom * int) list
and t = (mono * Qnum.t) list

exception Non_integral of string

(* Structural comparison is sound here: the type contains only strings,
   ints and nested lists, and normalization sorts every level. *)
let compare_atom (a : atom) (b : atom) = Stdlib.compare a b
let compare_mono (a : mono) (b : mono) = Stdlib.compare a b
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let zero : t = []
let q c : t = if Qnum.is_zero c then [] else [ ([], c) ]
let int n = q (Qnum.of_int n)
let one = int 1
let var v : t = [ ([ (Var v, 1) ], Qnum.one) ]
let is_zero (e : t) = e = []

let to_q = function
  | [] -> Some Qnum.zero
  | [ ([], c) ] -> Some c
  | _ -> None

let to_int e =
  match to_q e with
  | Some c when Qnum.is_integer c -> Some (Qnum.to_int c)
  | _ -> None

let const_part (e : t) =
  match List.assoc_opt [] e with Some c -> c | None -> Qnum.zero

(* Merge two sorted term lists, combining coefficients. *)
let add (a : t) (b : t) : t =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ma, ca) :: ta, (mb, cb) :: tb ->
        let c = compare_mono ma mb in
        if c < 0 then (ma, ca) :: go ta b
        else if c > 0 then (mb, cb) :: go a tb
        else
          let s = Qnum.add ca cb in
          if Qnum.is_zero s then go ta tb else (ma, s) :: go ta tb
  in
  go a b

let scale c (e : t) : t =
  if Qnum.is_zero c then [] else List.map (fun (m, k) -> (m, Qnum.mul c k)) e

let neg e = scale Qnum.minus_one e
let sub a b = add a (neg b)
let sum es = List.fold_left add zero es

(* [split_const e] = (constant integer part, residue) used to normalize
   Pow2 exponents: 2^(L-1) --> (1/2) * 2^L. Only the integer part of the
   constant is extracted so exponents stay integral. *)
let split_const (e : t) : int * t =
  let c = const_part e in
  if Qnum.is_zero c then (0, e)
  else
    let k = Qnum.floor c in
    if k = 0 then (0, e) else (k, add e (q (Qnum.of_int (-k))))

let norm_count = Metrics.counter "expr.norm"

(* Build a normalized monomial*coefficient from a raw atom^exp listing.
   All Pow2 atoms are fused: their exponents are summed (weighted by the
   integer power) and any constant part of the sum moves into the
   coefficient. *)
let rec norm_factors (factors : (atom * int) list) (coeff : Qnum.t) : t =
  Metrics.incr norm_count;
  let pow2_exp = ref zero in
  let others = ref [] in
  List.iter
    (fun (a, k) ->
      if k <> 0 then
        match a with
        | Pow2 e -> pow2_exp := add !pow2_exp (scale (Qnum.of_int k) e)
        | a -> others := (a, k) :: !others)
    factors;
  let kconst, residue = split_const !pow2_exp in
  let coeff = Qnum.mul coeff (Qnum.pow2 kconst) in
  let others =
    if is_zero residue then !others else (Pow2 residue, 1) :: !others
  in
  (* Combine duplicate atoms by summing exponents. *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (a, k) ->
      match Hashtbl.find_opt tbl a with
      | Some r -> r := !r + k
      | None ->
          Hashtbl.add tbl a (ref k);
          order := a :: !order)
    others;
  let mono =
    List.filter_map
      (fun a ->
        let k = !(Hashtbl.find tbl a) in
        if k = 0 then None else Some (a, k))
      !order
  in
  let mono = List.sort (fun (a, _) (b, _) -> compare_atom a b) mono in
  if Qnum.is_zero coeff then [] else [ (mono, coeff) ]

and mul_term (ma, ca) (mb, cb) : t = norm_factors (ma @ mb) (Qnum.mul ca cb)

and mul (a : t) (b : t) : t =
  List.fold_left
    (fun acc ta -> List.fold_left (fun acc tb -> add acc (mul_term ta tb)) acc b)
    zero a

let prod es = List.fold_left mul one es

let pow2 (e : t) : t =
  match to_q e with
  | Some c when Qnum.is_integer c -> q (Qnum.pow2 (Qnum.to_int c))
  | _ -> norm_factors [ (Pow2 e, 1) ] Qnum.one

(* Divide term-wise by a single monomial: subtract exponents. *)
let div_by_mono (e : t) (dm : mono) (dc : Qnum.t) : t =
  let inv_factors = List.map (fun (a, k) -> (a, -k)) dm in
  List.fold_left
    (fun acc (m, c) -> add acc (norm_factors (m @ inv_factors) (Qnum.div c dc)))
    zero e

let div (a : t) (b : t) : t =
  match b with
  | [] -> raise Qnum.Division_by_zero
  | [ (dm, dc) ] -> div_by_mono a dm dc
  | _ ->
      if equal a b then one
      else if is_zero a then zero
      else norm_factors [ (Opaque_div (a, b), 1) ] Qnum.one

(* An expression is provably integer-valued when every coefficient is an
   integer and every atom is integer-valued with non-negative exponent.
   Variables are integers by construction (loop indices / parameters);
   Pow2 is integral only for provably non-negative exponents, which we
   cannot see locally, so it is excluded unless the exponent is a bare
   variable-free... we keep it conservative: Pow2 counts only when its
   exponent has non-negative constant and no negative terms - too strong
   to decide locally, so Pow2 atoms simply disqualify. *)
let provably_integral (e : t) =
  List.for_all
    (fun (m, c) ->
      Qnum.is_integer c
      && List.for_all
           (fun (a, k) ->
             k >= 0
             && match a with Var _ | Floor_div _ | Ceil_div _ -> true | _ -> false)
           m)
    e

let floor_div (a : t) (b : t) : t =
  match (to_q a, to_q b) with
  | Some ca, Some cb when not (Qnum.is_zero cb) ->
      int (Qnum.floor (Qnum.div ca cb))
  | _, Some cb when Qnum.equal cb Qnum.one -> a
  | _ ->
      let e = div a b in
      let exact = not (List.exists (fun (m, _) ->
          List.exists (fun (a, _) -> match a with Opaque_div _ -> true | _ -> false) m) e)
      in
      if exact && provably_integral e then e
      else norm_factors [ (Floor_div (a, b), 1) ] Qnum.one

let ceil_div (a : t) (b : t) : t =
  match (to_q a, to_q b) with
  | Some ca, Some cb when not (Qnum.is_zero cb) ->
      int (Qnum.ceil (Qnum.div ca cb))
  | _, Some cb when Qnum.equal cb Qnum.one -> a
  | _ ->
      let e = div a b in
      let exact = not (List.exists (fun (m, _) ->
          List.exists (fun (a, _) -> match a with Opaque_div _ -> true | _ -> false) m) e)
      in
      if exact && provably_integral e then e
      else norm_factors [ (Ceil_div (a, b), 1) ] Qnum.one

let rec vars_atom acc = function
  | Var v -> v :: acc
  | Pow2 e -> vars_expr acc e
  | Floor_div (a, b) | Ceil_div (a, b) | Opaque_div (a, b) ->
      vars_expr (vars_expr acc a) b

and vars_expr acc (e : t) =
  List.fold_left
    (fun acc (m, _) -> List.fold_left (fun acc (a, _) -> vars_atom acc a) acc m)
    acc e

let vars e = List.sort_uniq String.compare (vars_expr [] e)
let mem_var v e = List.mem v (vars e)

(* Rebuild an expression, mapping variables through [f]. *)
let rec map_vars (f : string -> t) (e : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let term =
        List.fold_left
          (fun acc (a, k) -> mul acc (atom_power f a k))
          (q c) m
      in
      add acc term)
    zero e

and atom_power f a k : t =
  let base =
    match a with
    | Var v -> f v
    | Pow2 e -> pow2 (map_vars f e)
    | Floor_div (x, y) -> floor_div (map_vars f x) (map_vars f y)
    | Ceil_div (x, y) -> ceil_div (map_vars f x) (map_vars f y)
    | Opaque_div (x, y) -> div (map_vars f x) (map_vars f y)
  in
  if k >= 0 then
    let rec pow acc n = if n = 0 then acc else pow (mul acc base) (n - 1) in
    pow one k
  else
    (* Negative power: divide 1 by base^|k|. *)
    let rec pow acc n = if n = 0 then acc else pow (mul acc base) (n - 1) in
    div one (pow one (-k))

let subst v by e = map_vars (fun w -> if String.equal w v then by else var w) e

let subst_env bindings e =
  map_vars
    (fun w -> match List.assoc_opt w bindings with Some b -> b | None -> var w)
    e

let linear_in v (e : t) =
  let uses_v_atom a = List.mem v (List.sort_uniq String.compare (vars_atom [] a)) in
  let rec go a b = function
    | [] -> Some (a, b)
    | (m, c) :: rest -> (
        let v_factors, others = List.partition (fun (at, _) -> uses_v_atom at) m in
        match v_factors with
        | [] -> go a (add b [ (m, c) ]) rest
        | [ (Var _, 1) ] -> go (add a [ (others, c) ]) b rest
        | _ -> None)
  in
  go zero zero e

let eval lookup (e : t) =
  let rec eval_e (e : t) =
    List.fold_left
      (fun acc (m, c) ->
        Qnum.add acc
          (List.fold_left (fun acc (a, k) -> Qnum.mul acc (atom_val a k)) c m))
      Qnum.zero e
  and atom_val a k =
    let base =
      match a with
      | Var v -> lookup v
      | Pow2 e ->
          let x = eval_e e in
          if not (Qnum.is_integer x) then
            raise (Non_integral "Pow2 exponent");
          Qnum.pow2 (Qnum.to_int x)
      | Floor_div (x, y) -> Qnum.of_int (Qnum.floor (Qnum.div (eval_e x) (eval_e y)))
      | Ceil_div (x, y) -> Qnum.of_int (Qnum.ceil (Qnum.div (eval_e x) (eval_e y)))
      | Opaque_div (x, y) -> Qnum.div (eval_e x) (eval_e y)
    in
    let rec pow acc n = if n = 0 then acc else pow (Qnum.mul acc base) (n - 1) in
    if k >= 0 then pow Qnum.one k else Qnum.inv (pow Qnum.one (-k))
  in
  eval_e e

let eval_int lookup e =
  let v = eval lookup e in
  if Qnum.is_integer v then Qnum.to_int v
  else raise (Non_integral (Format.asprintf "value %a" Qnum.pp v))

let rec pp_atom ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Pow2 e -> Format.fprintf ppf "2^(%a)" pp e
  | Floor_div (a, b) -> Format.fprintf ppf "floor(%a / %a)" pp a pp b
  | Ceil_div (a, b) -> Format.fprintf ppf "ceil(%a / %a)" pp a pp b
  | Opaque_div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b

and pp_mono ppf (m : mono) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
    (fun ppf (a, k) ->
      if k = 1 then pp_atom ppf a else Format.fprintf ppf "%a^%d" pp_atom a k)
    ppf m

and pp ppf (e : t) =
  match e with
  | [] -> Format.pp_print_string ppf "0"
  | terms ->
      List.iteri
        (fun i (m, c) ->
          let neg = Qnum.sign c < 0 in
          if i = 0 then (if neg then Format.pp_print_string ppf "-")
          else Format.pp_print_string ppf (if neg then " - " else " + ");
          let c = Qnum.abs c in
          match m with
          | [] -> Qnum.pp ppf c
          | _ ->
              if not (Qnum.equal c Qnum.one) then
                Format.fprintf ppf "%a*" Qnum.pp c;
              pp_mono ppf m)
        terms

let to_string e = Format.asprintf "%a" pp e
