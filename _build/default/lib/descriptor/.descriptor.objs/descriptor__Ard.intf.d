lib/descriptor/ard.mli: Access_mix Expr Format Ir Phase Symbolic
