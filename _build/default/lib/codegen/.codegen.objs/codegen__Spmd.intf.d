lib/codegen/spmd.mli: Format Ilp Locality
