lib/frontend/unparse.ml: Assume Expr Format Ir List Symbolic
