lib/ir/build.mli: Assume Expr Symbolic Types
