type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Multiplication guard: detect overflow of [a * b] on 63-bit ints. *)
let mul_int a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let add_int a b =
  let s = a + b in
  (* Overflow iff operands share a sign and the sum flips it. *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow else s

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = gcd (Stdlib.abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b =
  if a.den = b.den then make (add_int a.num b.num) a.den
  else make (add_int (mul_int a.num b.den) (mul_int b.num a.den)) (mul_int a.den b.den)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to delay overflow. *)
  let g1 = gcd (Stdlib.abs a.num) b.den and g2 = gcd (Stdlib.abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make (mul_int (a.num / g1) (b.num / g2)) (mul_int (a.den / g2) (b.den / g1))

let inv a = if a.num = 0 then raise Division_by_zero else make a.den a.num
let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  (* Exact comparison via sign of the cross difference.  The raw
     products [a.num * b.den] and [b.num * a.den] can overflow for
     rationals near max_int even though both values are tame, which
     would make comparison partial; cancelling gcd(|a.num|, |b.num|)
     and gcd(a.den, b.den) first divides both products by the same
     positive factor, preserving the sign of their difference.  If the
     reduced products still overflow, fall back to the sign and then to
     floating-point comparison - inexact, but total. *)
  let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
  if sa <> sb then Stdlib.compare sa sb
  else if a.num = b.num && a.den = b.den then 0
  else
    let gn = gcd (Stdlib.abs a.num) (Stdlib.abs b.num) in
    let gd = gcd a.den b.den in
    let gn = if gn = 0 then 1 else gn in
    try
      Stdlib.compare
        (mul_int (a.num / gn) (b.den / gd))
        (mul_int (b.num / gn) (a.den / gd))
    with Overflow ->
      Stdlib.compare
        (float_of_int a.num /. float_of_int a.den)
        (float_of_int b.num /. float_of_int b.den)

let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let to_int a =
  if a.den = 1 then a.num
  else invalid_arg (Printf.sprintf "Qnum.to_int: %d/%d" a.num a.den)

let to_float a = float_of_int a.num /. float_of_int a.den

let floor a =
  if a.num >= 0 then a.num / a.den
  else -(((-a.num) + a.den - 1) / a.den)

let ceil a = -floor (neg a)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pow2 k =
  if k > 61 || k < -61 then raise Overflow
  else if k >= 0 then of_int (1 lsl k)
  else make 1 (1 lsl -k)

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
