(** Iteration/data distribution plans derived from a solved model.

    Iterations of phase k are scheduled CYCLIC(p_k): iteration i runs
    on processor [(i / p_k) mod H].  For each array, each {e chain} of
    its LCG (maximal L-connected run) covers one common data region; a
    block-cyclic layout with block [delta_P * p_head] anchored at the
    chain head's base offset keeps the primary accesses of every chain
    phase local.

    Storage symmetry enables two layout refinements, the paper's
    shifted and {e reverse distributions}: a [period] equal to a
    shifted distance maps the +Delta_d copy of every block onto the
    same owner, and a [mirror] of length Delta_r folds the address
    space so symmetric positions [a] and [Delta_r - 1 - a] share an
    owner.  {!of_solution} enumerates the candidate layouts a chain's
    distances suggest and keeps the one with the fewest measured remote
    accesses (exact counting over the chain's phases).

    Between chains (C edges) the array is redistributed; across D edges
    no data movement is needed. *)

type layout = {
  array : string;
  first_phase : int;  (** phase span (inclusive) this layout covers *)
  last_phase : int;
  base : int;  (** anchor address *)
  block : int;  (** block-cyclic block size, >= 1 *)
  period : int option;  (** shifted-distribution copy distance *)
  mirror : int option;  (** reverse-distribution fold length *)
  halo : int;
      (** ghost-zone width replicated around each owned block; reads
          within it are local (Theorem 1c), kept fresh by frontier
          updates after every writing phase *)
}

type plan = {
  h : int;
  chunk : int array;  (** p_k per phase *)
  layouts : layout list;
  privatized : (int * string) list;  (** (phase, array) with attr P *)
}

val proc_of : plan -> layout -> addr:int -> int

val own_of : h:int -> layout -> Symbolic.Lattice.Own.t
(** The layout's address-to-processor map as a {!Symbolic.Lattice.Own}
    piecewise-constant function; agrees with {!proc_of} everywhere. *)

val layout_for : plan -> array:string -> phase_idx:int -> layout option
(** The layout epoch active at the given phase. *)

val of_solution : Locality.Lcg.t -> p:int array -> plan

val block_plan : Locality.Lcg.t -> plan
(** The naive baseline: BLOCK layout of every array over the whole
    program, BLOCK iteration scheduling (chunk = ceil(n/H)); what an
    owner-computes compiler does without locality analysis. *)

val remote_count :
  Locality.Lcg.t -> plan -> layout -> phase_idx:int -> int
(** Remote accesses the layout induces for its array in one phase -
    exact; closed-form when the phase stays inside the symbolic
    fragment, by enumeration otherwise (or always, under
    [Lattice.Enumerated_only]). *)

val pp : Format.formatter -> plan -> unit
