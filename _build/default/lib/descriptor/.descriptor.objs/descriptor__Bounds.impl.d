lib/descriptor/bounds.ml: Expr Id List Option Probe Symbolic
