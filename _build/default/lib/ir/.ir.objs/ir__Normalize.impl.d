lib/ir/normalize.ml: Expr List Symbolic Types
