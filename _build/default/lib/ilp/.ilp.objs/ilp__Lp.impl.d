lib/ilp/lp.ml: Array List Qnum Symbolic
