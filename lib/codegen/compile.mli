(** Executable emission: compile a phase into closures.

    Where {!Spmd} prints the node program as prose, this module builds
    it as closures the real executor (library [exec]) can run: each
    phase of a normalized program becomes a [sweep] function that walks
    the loop nest natively, dispatching every array reference through a
    {!handlers} record supplied by the machine.  The sweep reproduces
    [Ir.Enumerate.iter]'s semantics exactly - same normalization, same
    linearized addressing (the trailing extent never multiplies), same
    CYCLIC(p_k) owner-computes schedule via {!proc_of_iteration} - so a
    parallel execution and a sequential replay of the same closures are
    comparable address by address. *)

open Symbolic
open Ilp

exception Unsupported of string
(** A construct the compiler cannot close over: an unbound parameter,
    an array extent that does not evaluate, a rank mismatch. *)

(** Compiled shape of one expression (exposed for tests): constant,
    affine in the loop slots [c0 + sum c_i * slot_i], or an opaque
    fallback that interprets the interned term per evaluation. *)
type shape = Const of int | Affine of int * (int * int) list | Opaque

type handlers = {
  read : par:int option -> array:string -> addr:int -> float;
      (** value of one array cell; [par] is the parallel-loop iteration
          (None in serial statements) *)
  write : par:int option -> array:string -> addr:int -> v:float -> unit;
  stamp : site:int -> addr:int -> float;
      (** deterministic per-write salt; [site] is the reference's
          textual position within its statement *)
  work : par:int option -> work:int -> unit;
      (** charged once per executed assignment *)
  sync : unit -> unit;
      (** called by {e every} processor (regardless of ownership) after
          each child of a serial loop that encloses the parallel loop -
          the points where cross-processor dependences can cross.  The
          executor parks a barrier here; the replay and the simulator
          pass a no-op. *)
}

type t = {
  phase_name : string;
  parallel : bool;  (** the phase contains a parallel loop *)
  nslots : int;  (** loop-variable slot file size the sweep needs *)
  shapes : shape list;  (** every compiled expression, in compile order *)
  sweep : slots:int array -> me:int option -> handlers -> unit;
      (** [me = Some p] executes only processor [p]'s share of the
          CYCLIC(chunk) schedule (serial statements run on processor 0;
          a phase with no parallel loop is a no-op for [p <> 0]);
          [me = None] executes every iteration in program order - the
          sequential replay.  [slots] must have at least [nslots]
          cells and is scratch space owned by the caller. *)
}

val proc_of_iteration : chunk:int -> h:int -> int -> int
(** CYCLIC(p): iteration [i] runs on [(i / p) mod h]. *)

val phase :
  Ir.Types.program -> Env.t -> Distribution.plan -> int -> Ir.Types.phase -> t
(** [phase prog env plan k ph] compiles phase [k] under the plan's
    chunk size and processor count.  @raise Unsupported as above. *)

val program : Ir.Types.program -> Env.t -> Distribution.plan -> t list
(** All phases, in order. *)
