lib/descriptor/coalesce.mli: Ir Pd
