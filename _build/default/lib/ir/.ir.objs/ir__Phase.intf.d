lib/ir/phase.mli: Assume Expr Symbolic Types
