open Symbolic

let set j x l = List.mapi (fun k y -> if k = j then x else y) l

(* Try to merge row [b] into row [a] (offset of [a] <= offset of [b]).
   Returns the merged row and possibly an extra dim to append. *)
let merge_rows asm (g : Pd.group) (a : Pd.row) (b : Pd.row) :
    (Pd.row * Pd.dim option) option =
  let same_shape =
    List.length a.alphas = List.length b.alphas
    && List.for_all2 (fun x y -> Probe.equal asm x y) a.alphas b.alphas
    && a.signs = b.signs
  in
  if not same_shape then begin
    (* Containment: if row [a] is dense (its element count equals its
       extent) and [b]'s region lies inside [a]'s with the same parallel
       behaviour, [b] adds nothing - e.g. a workspace read covering a
       prefix of the region the same iteration wrote. *)
    let seq_idx = List.map fst (Pd.seq_dims g) in
    let count_a =
      List.fold_left
        (fun acc i -> Expr.mul acc (List.nth a.alphas i))
        Expr.one seq_idx
    in
    let span_a = Pd.row_span_seq g a and span_b = Pd.row_span_seq g b in
    let dense_a = Probe.equal asm (Expr.add span_a Expr.one) count_a in
    let same_par =
      Pd.par_sign a g = Pd.par_sign b g
      (* group dims are shared, so parallel strides already agree *)
    in
    if
      dense_a && same_par
      && Probe.nonneg asm (Expr.sub b.offset a.offset)
      && Probe.le asm (Expr.add b.offset span_b) (Expr.add a.offset span_a)
    then
      Some ({ a with Pd.mix = Access_mix.join a.mix b.mix; phis = a.phis @ b.phis }, None)
    else None
  end
  else
    let delta = Expr.sub b.offset a.offset in
    let joined =
      { a with Pd.mix = Access_mix.join a.mix b.mix; phis = a.phis @ b.phis }
    in
    if Probe.is_zero asm delta then Some (joined, None)
    else if not (Probe.nonneg asm delta) then None
    else
      let span = Pd.row_span_seq g a in
      match Pd.finest_seq asm g with
      | Some (f, fine) ->
          let alpha_f = List.nth a.alphas f in
          let span_f = Expr.mul (Expr.sub alpha_f Expr.one) fine.stride in
          if
            Probe.divides asm fine.stride delta
            && Probe.le asm delta (Expr.add span_f fine.stride)
          then
            let alpha_f' = Expr.add (Expr.div delta fine.stride) alpha_f in
            Some ({ joined with Pd.alphas = set f alpha_f' joined.Pd.alphas }, None)
          else if Probe.le asm delta (Expr.add span fine.stride) then
            (* Aggregate as a fresh 2-element dimension. *)
            Some
              ( { joined with Pd.alphas = joined.Pd.alphas @ [ Expr.int 2 ];
                  signs = joined.signs @ [ 1 ] },
                Some { Pd.stride = delta; vars = []; uniform = true } )
          else None
      | None ->
          (* Scalar rows: aggregate adjacent elements as a new dim. *)
          if Probe.le asm delta Expr.one then
            Some
              ( { joined with Pd.alphas = joined.Pd.alphas @ [ Expr.int 2 ];
                  signs = joined.signs @ [ 1 ] },
                Some { Pd.stride = delta; vars = []; uniform = true } )
          else None

let union_group asm (g : Pd.group) : Pd.group =
  (* Sort rows by offset (probed), then fold-merge neighbours.  A merge
     that appends a dimension restructures the group, so we restart
     after each successful merge. *)
  let sorted_rows g =
    List.sort
      (fun (a : Pd.row) (b : Pd.row) ->
        if Expr.equal a.offset b.offset then 0
        else if Probe.le asm a.offset b.offset then -1
        else 1)
      g.Pd.rows
  in
  let rec pass (g : Pd.group) =
    let rows = sorted_rows g in
    let rec scan acc = function
      | a :: b :: rest -> (
          let attempt =
            match merge_rows asm g a b with
            | Some r -> Some r
            | None -> merge_rows asm g b a
          in
          match attempt with
          | Some (merged, None) ->
              Some { g with rows = List.rev_append acc (merged :: rest) }
          | Some (merged, Some extra_dim) ->
              (* All other rows must gain a 1-count entry for the new dim. *)
              let pad (r : Pd.row) =
                { r with Pd.alphas = r.alphas @ [ Expr.one ]; signs = r.signs @ [ 1 ] }
              in
              let others = List.rev_append (List.map pad acc) (List.map pad rest) in
              Some
                {
                  g with
                  dims = g.dims @ [ extra_dim ];
                  rows = merged :: others;
                }
          | None -> scan (a :: acc) (b :: rest))
      | _ -> None
    in
    match scan [] rows with Some g' -> pass g' | None -> g
  in
  pass g

let rows (t : Pd.t) : Pd.t =
  { t with groups = List.map (union_group t.ctx.assume) t.groups }

let simplify_timer = Metrics.timer "descriptor.unionize"

let simplify (t : Pd.t) : Pd.t =
  Metrics.with_timer simplify_timer (fun () ->
      Coalesce.pd (rows (Coalesce.pd t)))

(* Extend row [a] along the parallel dimension to absorb row [b]
   starting where [a]'s sweep ends (or overlapping it).  Sound only for
   whole-phase region reasoning (homogenization): within one phase it
   would change the per-iteration ID semantics. *)
let merge_par asm (g : Pd.group) (a : Pd.row) (b : Pd.row) : Pd.row option =
  match g.par with
  | None -> None
  | Some pi ->
      let dp = (List.nth g.dims pi).stride in
      if Expr.is_zero dp then None
      else
        let same_seq =
          List.length a.alphas = List.length b.alphas
          && List.for_all2
               (fun x y -> Probe.equal asm x y)
               (List.filteri (fun i _ -> i <> pi) a.alphas)
               (List.filteri (fun i _ -> i <> pi) b.alphas)
          && a.signs = b.signs
        in
        let delta = Expr.sub b.offset a.offset in
        if
          same_seq
          && Probe.nonneg asm delta
          && Probe.divides asm dp delta
          && Probe.le asm delta (Expr.mul (List.nth a.alphas pi) dp)
        then
          Some
            {
              a with
              Pd.alphas =
                set pi
                  (Expr.add (Expr.div delta dp) (List.nth b.alphas pi))
                  a.Pd.alphas;
              mix = Access_mix.join a.mix b.mix;
              phis = a.phis @ b.phis;
            }
        else None

let union_group_par asm (g : Pd.group) : Pd.group =
  let rec pass (g : Pd.group) =
    let rows =
      List.sort
        (fun (a : Pd.row) (b : Pd.row) ->
          if Expr.equal a.offset b.offset then 0
          else if Probe.le asm a.offset b.offset then -1
          else 1)
        g.Pd.rows
    in
    let rec scan acc = function
      | a :: b :: rest -> (
          match merge_par asm g a b with
          | Some merged ->
              Some { g with rows = List.rev_append acc (merged :: rest) }
          | None -> scan (a :: acc) (b :: rest))
      | _ -> None
    in
    match scan [] rows with Some g' -> pass g' | None -> g
  in
  pass g

let homogenize (a : Pd.t) (b : Pd.t) : Pd.t option =
  if not (String.equal a.array b.array) then None
  else
    let asm = a.ctx.assume in
    let compatible (ga : Pd.group) (gb : Pd.group) =
      List.length ga.dims = List.length gb.dims
      && ga.par = gb.par
      && List.for_all2
           (fun (x : Pd.dim) (y : Pd.dim) -> Probe.equal asm x.stride y.stride)
           ga.dims gb.dims
    in
    match (a.groups, b.groups) with
    | [ ga ], [ gb ] when compatible ga gb ->
        let merged =
          union_group_par asm
            (union_group asm { ga with rows = ga.rows @ gb.rows })
        in
        Some { a with groups = [ merged ]; exact = a.exact && b.exact }
    | _ -> None
