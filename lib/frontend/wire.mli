(** Wire protocol for [dsmloc serve]: length-prefixed text frames plus
    the request/response documents they carry.

    The module is pure (no [unix] dependency): the daemon, the client
    and the tests all share one {e total} codec, so a hostile byte
    stream can produce [`Bad] but never an exception, a multi-gigabyte
    allocation, or a hang.

    {b Framing.}  Every message, both directions, is an 8-byte
    big-endian payload length followed by that many bytes of UTF-8
    text - the same frame shape as the worker-pool pipes (DESIGN.md
    section 13.1), but carrying text instead of [Marshal] payloads
    because the peer is another process, possibly another binary.  The
    decoder validates the length against a hard cap {e before}
    allocating: a corrupt or adversarial prefix yields [`Bad], never
    [Out_of_memory].

    {b Requests} are the surface language ({!Parse.program}) prefixed
    by [%]-directive lines:

    {v
    %procs 8
    %env N=32,M=16
    %deadline 2.5
    program jacobi2d
    ...
    v}

    {b Responses} are [%]-directive lines, a [---] separator, then the
    rendered report / diagnostics body. *)

(** {1 Framing} *)

val default_max_frame : int
(** 16 MiB: larger than any realistic program or report, small enough
    that a corrupt length prefix cannot hurt. *)

val encode_frame : string -> bytes
(** 8-byte big-endian length header followed by the payload. *)

type decoder
(** Incremental frame decoder: feed bytes as they arrive, pull frames
    as they complete.  A decoder never reads ahead of one frame's
    worth of buffered input and never allocates more than
    [max_frame + 8] bytes. *)

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> bytes -> pos:int -> len:int -> unit
(** Append [len] bytes of [b] starting at [pos] to the decoder's
    buffer. *)

val feed_string : decoder -> string -> unit

type frame_result =
  | Frame of string  (** one complete payload *)
  | Need_more  (** the buffered input ends mid-header or mid-payload *)
  | Bad of string
      (** unrecoverable framing violation (negative or over-cap
          length); the connection cannot be resynchronised *)

val next : decoder -> frame_result
(** Pull the next complete frame.  After [Bad] the decoder is poisoned:
    every further [next] returns the same [Bad]. *)

val buffered : decoder -> int
(** Bytes currently buffered (a trickling peer's partial frame). *)

(** {1 Requests} *)

type request = {
  source : string;  (** surface-language program text *)
  env : (string * int) list;  (** parameter bindings, [%env] *)
  procs : int;  (** processor count H, [%procs] (default 4) *)
  deadline : float option;  (** seconds, [%deadline] *)
  hang : float;
      (** test hook, [%hang]: sleep this long in the worker before
          analyzing (only honoured by a daemon started with test hooks
          enabled) *)
  crash : bool;
      (** test hook, [%crash]: the worker SIGKILLs itself (ditto) *)
}

val request : ?env:(string * int) list -> ?procs:int -> ?deadline:float ->
  ?hang:float -> ?crash:bool -> string -> request
(** Request with defaults over a program source. *)

val encode_request : request -> string

val parse_request : string -> (request, string) result
(** Total: malformed directives are an [Error], never an exception. *)

(** {1 Responses} *)

type status =
  | Ok  (** analysis completed cleanly *)
  | Degraded  (** completed on a documented fallback (exit 2 contract) *)
  | Error  (** request-level failure: parse error, crashed worker... *)
  | Overload  (** shed by admission control; retry after the hint *)
  | Deadline  (** the per-request deadline expired; the worker was killed *)

val status_to_string : status -> string
val status_of_string : string -> status option

type response = {
  status : status;
  code : string option;  (** stable diagnostic code ([SERVE-*]) on failures *)
  artifact_hits : int;  (** artifact-store hits while serving this request *)
  worker_requests : int;  (** requests served by the worker, this one included *)
  elapsed_ms : float;  (** wall time inside the daemon (queue + service) *)
  retry_after : float option;  (** seconds, on [Overload] *)
  body : string;  (** report text, diagnostics table, or error message *)
}

val response :
  ?code:string -> ?artifact_hits:int -> ?worker_requests:int ->
  ?elapsed_ms:float -> ?retry_after:float -> status -> string -> response

val encode_response : response -> string
val parse_response : string -> (response, string) result
