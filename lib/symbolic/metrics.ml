(* Process-wide registry of named counters, timers, histograms and
   cache statistics.  Cells are created on first use and live for the
   whole process; [reset] zeroes the numbers but keeps the cells, so a
   handle obtained at module-initialization time stays valid across
   resets (the profiling drivers reset between kernels). *)

type counter = { c_name : string; mutable count : int }

type timer = {
  t_name : string;
  mutable calls : int;
  mutable seconds : float;
  mutable depth : int;  (* reentrancy guard: only the outermost call times *)
}

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type cache = { k_name : string; mutable hits : int; mutable misses : int }

type cell =
  | Counter of counter
  | Timer of timer
  | Histogram of histogram
  | Cache of cache

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

(* Creation order, so reports are stable and grouped the way the cells
   were introduced rather than in hash order. *)
let order : string list ref = ref []

let find_or_create name make =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add registry name c;
      order := name :: !order;
      c

let mismatch name = invalid_arg ("Metrics: cell kind mismatch for " ^ name)

let counter name =
  match
    find_or_create name (fun () -> Counter { c_name = name; count = 0 })
  with
  | Counter c -> c
  | _ -> mismatch name

let timer name =
  match
    find_or_create name (fun () ->
        Timer { t_name = name; calls = 0; seconds = 0.0; depth = 0 })
  with
  | Timer t -> t
  | _ -> mismatch name

let histogram name =
  match
    find_or_create name (fun () ->
        Histogram
          { h_name = name; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity })
  with
  | Histogram h -> h
  | _ -> mismatch name

let cache name =
  match
    find_or_create name (fun () -> Cache { k_name = name; hits = 0; misses = 0 })
  with
  | Cache c -> c
  | _ -> mismatch name

let incr ?(by = 1) c = c.count <- c.count + by
let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let now = Unix.gettimeofday

let with_timer t f =
  t.calls <- t.calls + 1;
  if t.depth > 0 then begin
    (* Recursive entry: count the call but let the outer frame own the
       wall clock, otherwise recursion double-bills. *)
    t.depth <- t.depth + 1;
    Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) f
  end
  else begin
    t.depth <- 1;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        t.seconds <- t.seconds +. (now () -. t0);
        t.depth <- t.depth - 1)
      f
  end

let add_time t s =
  t.calls <- t.calls + 1;
  t.seconds <- t.seconds +. s

let hit c = c.hits <- c.hits + 1
let miss c = c.misses <- c.misses + 1

let hits c = c.hits
let misses c = c.misses
let lookups c = c.hits + c.misses

let hit_rate c =
  let n = lookups c in
  if n = 0 then 0.0 else float_of_int c.hits /. float_of_int n

let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.count <- 0
      | Timer t ->
          t.calls <- 0;
          t.seconds <- 0.0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0.0;
          h.min_v <- infinity;
          h.max_v <- neg_infinity
      | Cache c ->
          c.hits <- 0;
          c.misses <- 0)
    registry

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  counters : (string * int) list;
  timers : (string * (int * float)) list;  (** calls, seconds *)
  histograms : (string * (int * float * float * float)) list;
      (** n, sum, min, max *)
  caches : (string * (int * int)) list;  (** hits, misses *)
}

let snapshot () =
  let names = List.rev !order in
  let pick f = List.filter_map f names in
  {
    counters =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Counter c) -> Some (n, c.count)
          | _ -> None);
    timers =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Timer t) -> Some (n, (t.calls, t.seconds))
          | _ -> None);
    histograms =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Histogram h) -> Some (n, (h.n, h.sum, h.min_v, h.max_v))
          | _ -> None);
    caches =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Cache c) -> Some (n, (c.hits, c.misses))
          | _ -> None);
  }

(* Fleet-wide aggregation: the batch driver's workers each report a
   per-job snapshot over the result pipe; the parent folds them into
   one registry-shaped view.  Counts add; histogram extrema combine;
   an empty histogram side contributes nothing (its min/max are
   sentinels, or 0 after a JSON round trip). *)
let merge (a : snapshot) (b : snapshot) : snapshot =
  let union ~combine xs ys =
    let merged =
      List.map
        (fun (n, v) ->
          match List.assoc_opt n ys with
          | Some w -> (n, combine v w)
          | None -> (n, v))
        xs
    in
    merged @ List.filter (fun (n, _) -> not (List.mem_assoc n xs)) ys
  in
  {
    counters = union ~combine:( + ) a.counters b.counters;
    timers =
      union
        ~combine:(fun (c1, s1) (c2, s2) -> (c1 + c2, s1 +. s2))
        a.timers b.timers;
    histograms =
      union
        ~combine:(fun (n1, s1, mn1, mx1) (n2, s2, mn2, mx2) ->
          if n1 = 0 then (n2, s2, mn2, mx2)
          else if n2 = 0 then (n1, s1, mn1, mx1)
          else (n1 + n2, s1 +. s2, Stdlib.min mn1 mn2, Stdlib.max mx1 mx2))
        a.histograms b.histograms;
    caches =
      union
        ~combine:(fun (h1, m1) (h2, m2) -> (h1 + h2, m1 + m2))
        a.caches b.caches;
  }

let absorb (s : snapshot) =
  List.iter
    (fun (n, v) ->
      let c = counter n in
      c.count <- c.count + v)
    s.counters;
  List.iter
    (fun (n, (calls, secs)) ->
      let t = timer n in
      t.calls <- t.calls + calls;
      t.seconds <- t.seconds +. secs)
    s.timers;
  List.iter
    (fun (n, (cnt, sum, mn, mx)) ->
      if cnt > 0 then begin
        let h = histogram n in
        h.n <- h.n + cnt;
        h.sum <- h.sum +. sum;
        if mn < h.min_v then h.min_v <- mn;
        if mx > h.max_v then h.max_v <- mx
      end)
    s.histograms;
  List.iter
    (fun (n, (hits, misses)) ->
      let c = cache n in
      c.hits <- c.hits + hits;
      c.misses <- c.misses + misses)
    s.caches

let pp_table ppf (s : snapshot) =
  let line fmt = Format.fprintf ppf fmt in
  if s.timers <> [] then begin
    line "%-28s %10s %14s %12s@," "timer" "calls" "total ms" "ms/call";
    List.iter
      (fun (n, (calls, sec)) ->
        line "%-28s %10d %14.3f %12.5f@," n calls (1000. *. sec)
          (if calls = 0 then 0.0 else 1000. *. sec /. float_of_int calls))
      s.timers
  end;
  if s.caches <> [] then begin
    line "%-28s %10s %10s %12s@," "cache" "hits" "misses" "hit rate";
    List.iter
      (fun (n, (h, m)) ->
        let total = h + m in
        line "%-28s %10d %10d %11.1f%%@," n h m
          (if total = 0 then 0.0 else 100. *. float_of_int h /. float_of_int total))
      s.caches
  end;
  if s.counters <> [] then begin
    line "%-28s %10s@," "counter" "value";
    List.iter (fun (n, v) -> line "%-28s %10d@," n v) s.counters
  end;
  if s.histograms <> [] then begin
    line "%-28s %10s %14s %12s %12s@," "histogram" "n" "mean" "min" "max";
    List.iter
      (fun (n, (cnt, sum, mn, mx)) ->
        if cnt = 0 then line "%-28s %10d %14s %12s %12s@," n 0 "-" "-" "-"
        else
          line "%-28s %10d %14.3f %12.3f %12.3f@," n cnt
            (sum /. float_of_int cnt)
            mn mx)
      s.histograms
  end

let report () = Format.asprintf "@[<v>%a@]" pp_table (snapshot ())

(* ------------------------------------------------------------------ *)
(* JSON rendering - hand-rolled so the registry stays dependency-free.
   Only cell names reach string positions; escape the JSON specials. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* NaN / infinities are not JSON numbers; map them to null. *)
let json_float f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

let to_json (s : snapshot) =
  json_obj
    [
      ( "timers",
        json_obj
          (List.map
             (fun (n, (calls, sec)) ->
               ( n,
                 json_obj
                   [
                     ("calls", string_of_int calls);
                     ("seconds", json_float sec);
                   ] ))
             s.timers) );
      ( "caches",
        json_obj
          (List.map
             (fun (n, (h, m)) ->
               let total = h + m in
               ( n,
                 json_obj
                   [
                     ("hits", string_of_int h);
                     ("misses", string_of_int m);
                     ( "hit_rate",
                       json_float
                         (if total = 0 then 0.0
                          else float_of_int h /. float_of_int total) );
                   ] ))
             s.caches) );
      ( "counters",
        json_obj (List.map (fun (n, v) -> (n, string_of_int v)) s.counters) );
      ( "histograms",
        json_obj
          (List.map
             (fun (n, (cnt, sum, mn, mx)) ->
               ( n,
                 json_obj
                   [
                     ("n", string_of_int cnt);
                     ("sum", json_float sum);
                     ("min", json_float (if cnt = 0 then 0.0 else mn));
                     ("max", json_float (if cnt = 0 then 0.0 else mx));
                   ] ))
             s.histograms) );
    ]

(* ------------------------------------------------------------------ *)
(* JSON parsing - the inverse of [to_json], hand-rolled for the same
   no-dependency reason.  The pool workers ship their per-job snapshots
   over the result pipe as JSON text; the parent parses them back for
   merging.  Malformed input raises [Parse_error], which the pool maps
   to a POOL-PROFILE-BAD diagnostic instead of killing the parent. *)

exception Parse_error of string

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at %d" msg !pos))
  in
  let peek () = if !pos >= n then fail "unexpected end" else s.[!pos] in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c) else advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* cell names are ASCII; anything else round-trips as '?' *)
              Buffer.add_char buf
                (if code < 0x80 then Char.chr code else '?')
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Jstr (string_lit ())
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | '-' | '0' .. '9' -> Jnum (number ())
    | _ -> fail "unexpected character"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Jobj []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ((k, v) :: acc)
        | '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Jarr []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems (v :: acc)
        | ']' ->
            advance ();
            Jarr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_json (text : string) : snapshot =
  let fields = function
    | Jobj kvs -> kvs
    | _ -> raise (Parse_error "object expected")
  in
  let num = function
    | Jnum f -> f
    | Jnull -> 0.0 (* json_float maps NaN/infinities to null *)
    | _ -> raise (Parse_error "number expected")
  in
  let field kvs k =
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ k))
  in
  let int_field kvs k = int_of_float (num (field kvs k)) in
  let float_field kvs k = num (field kvs k) in
  let section top name =
    match List.assoc_opt name top with
    | Some (Jobj kvs) -> kvs
    | _ -> raise (Parse_error ("missing section " ^ name))
  in
  let top = fields (parse_json text) in
  {
    counters = List.map (fun (n, v) -> (n, int_of_float (num v))) (section top "counters");
    timers =
      List.map
        (fun (n, v) ->
          let kvs = fields v in
          (n, (int_field kvs "calls", float_field kvs "seconds")))
        (section top "timers");
    histograms =
      List.map
        (fun (n, v) ->
          let kvs = fields v in
          ( n,
            ( int_field kvs "n",
              float_field kvs "sum",
              float_field kvs "min",
              float_field kvs "max" ) ))
        (section top "histograms");
    caches =
      List.map
        (fun (n, v) ->
          let kvs = fields v in
          (n, (int_field kvs "hits", int_field kvs "misses")))
        (section top "caches");
  }
