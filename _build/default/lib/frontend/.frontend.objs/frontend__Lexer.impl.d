lib/frontend/lexer.ml: Format List Printf String
