test/test_dsmsim.ml: Alcotest Array Codes Comm Core Distribution Dsmsim Exec Ilp Ir List Printf Probe Symbolic Validate
