lib/descriptor/ard.ml: Access_mix Expr Format Ir Linearize List Option Phase Probe String Symbolic Types
