lib/symbolic/range.mli: Assume Expr
