open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (8, 64)) ]

let nN = var "N"
let at r c = (r + (nN * c) : Expr.t)

(* Column sweep: parallel over columns, forward recurrence down the
   rows of each column (sequential inner loop). *)
let phase_col =
  phase "COLSWEEP"
    (doall "c" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 1)
           [
             assign ~work:6
               [
                 read "U" [ at (var "r" - int 1) (var "c") ];
                 read "U" [ at (var "r") (var "c") ];
                 write "U" [ at (var "r") (var "c") ];
               ];
           ];
       ])

(* Row sweep: parallel over rows, recurrence along the columns of each
   row - N-strided accesses. *)
let phase_row =
  phase "ROWSWEEP"
    (doall "r" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "c" ~lo:(int 1) ~hi:(nN - int 1)
           [
             assign ~work:6
               [
                 read "U" [ at (var "r") (var "c" - int 1) ];
                 read "U" [ at (var "r") (var "c") ];
                 write "U" [ at (var "r") (var "c") ];
               ];
           ];
       ])

let program =
  program ~repeats:true ~name:"adi" ~params
    ~arrays:[ array "U" [ nN * nN ] ]
    [ phase_col; phase_row ]

let env ~n = Env.of_list [ ("N", n) ]
