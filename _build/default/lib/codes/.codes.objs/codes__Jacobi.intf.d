lib/codes/jacobi.mli: Assume Env Ir Symbolic
