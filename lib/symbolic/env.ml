module M = Map.Make (String)

(* Each environment carries a unique [id]: the memo-coherence key every
   cache uses (see DESIGN.md sections 12 and 14).  Environments are
   immutable, so an (id, expr) artifact key can never alias between
   bindings.

   [ephemeral] marks environments that live shorter than a cache entry
   is worth: probe samples and the enumerator's per-iteration bindings.
   Their evaluations bypass the global store - inserting them would
   promote megabytes of short-lived keys to the major heap and evict
   the durable entries the warm path depends on.  The flag is sticky
   across [add] so a whole derivation chain opts out at its root. *)
type t = { map : int M.t; id : int; ephemeral : bool }

exception Unbound of string

let next_id = ref 0

let make ?(ephemeral = false) map =
  incr next_id;
  { map; id = !next_id; ephemeral }

let empty = make M.empty
let of_list l = make (List.fold_left (fun m (k, v) -> M.add k v m) M.empty l)
let add k v t = make ~ephemeral:t.ephemeral (M.add k v t.map)
let id t = t.id
let ephemeral t = if t.ephemeral then t else make ~ephemeral:true t.map

let find env v =
  match M.find_opt v env.map with Some x -> x | None -> raise (Unbound v)

let find_opt env v = M.find_opt v env.map
let mem env v = M.mem v env.map
let bindings env = M.bindings env.map
let lookup env v = Qnum.of_int (find env v)

(* Evaluation is a pure function of (environment, expression), so the
   store is non-volatile; only successful evaluations are cached - an
   evaluation that raises (unbound variable, fractional Pow2 exponent)
   recomputes and the exception propagates unchanged. *)
let eval_store : Qnum.t Artifact.store =
  Artifact.store ~capacity:131_072 "env.eval"

let uncached_count = Metrics.counter "env.eval_uncached"

let eval_q env e =
  if env.ephemeral then begin
    Metrics.incr uncached_count;
    Expr.eval (lookup env) e
  end
  else
    Artifact.find eval_store
      Artifact.Key.(list [ int env.id; expr e ])
      (fun () -> Expr.eval (lookup env) e)

let eval env e =
  let v = eval_q env e in
  if Qnum.is_integer v then Qnum.to_int v
  else raise (Expr.Non_integral (Format.asprintf "value %a" Qnum.pp v))

let pp ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (bindings env)
