(* Tests for the fuzzing subsystem: the generator's well-formedness
   guarantees, the greedy shrinker's contract (preservation of both
   well-formedness and the failure predicate, idempotence), and the
   end-to-end injected-mutation self-test - a deliberately skewed
   descriptor algebra must be caught by the differential battery and
   shrunk to a tiny reproducer. *)

open Symbolic

let unparse = Frontend.Unparse.to_string

(* A program is well-formed when its surface text parses back and the
   full pipeline runs without Error-severity diagnostics. *)
let well_formed p =
  match Core.Pipeline.parse_program ~where:"<wf>" (unparse p) with
  | None -> false
  | Some p' ->
      let t = Core.Pipeline.run p' ~env:(Fuzz.Gen.midpoint_env p') ~h:4 in
      not (Core.Pipeline.degraded t)

let gen_programs ?(profile = Fuzz.Gen.default) ~seed n =
  List.init n (fun i -> Fuzz.Gen.program profile ~seed ~index:i)

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_gen_well_formed () =
  List.iter
    (fun p -> Alcotest.(check bool) p.Ir.Types.prog_name true (well_formed p))
    (gen_programs ~seed:7 40)

let test_gen_deterministic () =
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same source" (unparse a) (unparse b))
    (gen_programs ~seed:11 10)
    (gen_programs ~seed:11 10)

let test_gen_deep () =
  let p = Fuzz.Gen.program Fuzz.Gen.deep ~seed:3 ~index:0 in
  let n = List.length p.Ir.Types.phases in
  Alcotest.(check bool) "50..100 phases" true (n >= 50 && n <= 100);
  Alcotest.(check bool) "well-formed" true (well_formed p)

(* ------------------------------------------------------------------ *)
(* Shrinker *)

(* A structural predicate that real failures resemble: program still
   contains a parallel phase that writes array "A". *)
let keep_structural p =
  well_formed p
  && List.exists
       (fun (ph : Ir.Types.phase) ->
         let rec writes_a (s : Ir.Types.stmt) =
           match s with
           | Loop l -> l.parallel && List.exists writes_a l.body
           | Assign a ->
               List.exists
                 (fun (r : Ir.Types.array_ref) ->
                   r.array = "A" && r.access = Ir.Types.Write)
                 a.refs
         in
         writes_a (Ir.Types.Loop ph.Ir.Types.nest))
       p.Ir.Types.phases

let test_shrink_preserves () =
  let hits = ref 0 in
  List.iter
    (fun p ->
      if keep_structural p then begin
        incr hits;
        let small = Fuzz.Shrink.run ~keep:keep_structural p in
        Alcotest.(check bool) "result still satisfies keep" true
          (keep_structural small);
        Alcotest.(check bool) "result still well-formed" true
          (well_formed small);
        Alcotest.(check bool) "no growth" true
          (Fuzz.Shrink.size small <= Fuzz.Shrink.size p)
      end)
    (gen_programs ~seed:19 30);
  Alcotest.(check bool) "predicate fired on several programs" true (!hits >= 5)

let test_shrink_idempotent () =
  List.iter
    (fun p ->
      if keep_structural p then begin
        let once = Fuzz.Shrink.run ~keep:keep_structural p in
        let twice = Fuzz.Shrink.run ~keep:keep_structural once in
        Alcotest.(check string) "shrink o shrink = shrink" (unparse once)
          (unparse twice)
      end)
    (gen_programs ~seed:23 20)

let test_shrink_non_failing_identity () =
  let p = Fuzz.Gen.program Fuzz.Gen.default ~seed:29 ~index:0 in
  let small = Fuzz.Shrink.run ~keep:(fun _ -> false) p in
  Alcotest.(check string) "keep-false returns input" (unparse p)
    (unparse small)

(* ------------------------------------------------------------------ *)
(* Injected-mutation self-test: skew the symbolic cardinality algebra
   and prove the battery catches it and shrinks the witness to a
   reproducer of at most 12 lines that flips back to passing once the
   mutation is removed. *)

let line_count s =
  String.split_on_char '\n' (String.trim s) |> List.length

let with_skew k f =
  let saved = !Lattice.test_card_skew in
  Fun.protect
    ~finally:(fun () -> Lattice.test_card_skew := saved)
    (fun () ->
      Lattice.test_card_skew := k;
      f ())

let test_injected_mutation () =
  let enum_parity = Fuzz.Differ.find "enum-parity" in
  let fails p =
    match enum_parity.run p with Fuzz.Differ.Fail _ -> true | _ -> false
  in
  with_skew 1 (fun () ->
      (* the mutation must be caught within a small budget of programs *)
      let witness =
        List.find_opt fails (gen_programs ~seed:42 12)
      in
      match witness with
      | None -> Alcotest.fail "skewed algebra not caught within 12 programs"
      | Some w ->
          let small = Fuzz.Shrink.run ~keep:fails w in
          let text = unparse small in
          Alcotest.(check bool)
            (Printf.sprintf "reproducer is <= 12 lines (got %d):\n%s"
               (line_count text) text)
            true
            (line_count text <= 12);
          Alcotest.(check bool) "reproducer still fails under mutation" true
            (fails small);
          (* removing the mutation makes the same program pass *)
          with_skew 0 (fun () ->
              Alcotest.(check bool) "reproducer passes without mutation" true
                (match enum_parity.run small with
                | Fuzz.Differ.Pass -> true
                | _ -> false)))

(* A clean battery: no differential check fires on unmutated code. *)
let test_battery_clean () =
  List.iter
    (fun p ->
      List.iter
        (fun ((name, v) : string * Fuzz.Differ.verdict) ->
          match v with
          | Fuzz.Differ.Fail d ->
              Alcotest.fail
                (Printf.sprintf "%s fails %s: %s" p.Ir.Types.prog_name name d)
          | _ -> ())
        (Fuzz.Differ.battery p))
    (gen_programs ~seed:5 10)

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "programs are well-formed" `Quick
            test_gen_well_formed;
          Alcotest.test_case "seeded determinism" `Quick test_gen_deterministic;
          Alcotest.test_case "deep profile" `Slow test_gen_deep;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "preserves keep + well-formedness" `Quick
            test_shrink_preserves;
          Alcotest.test_case "idempotent" `Quick test_shrink_idempotent;
          Alcotest.test_case "identity when keep never holds" `Quick
            test_shrink_non_failing_identity;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean battery on clean code" `Slow
            test_battery_clean;
          Alcotest.test_case "injected mutation caught and shrunk" `Slow
            test_injected_mutation;
        ] );
    ]
