open Symbolic
open Locality

type layout = {
  array : string;
  first_phase : int;
  last_phase : int;
  base : int;
  block : int;
  period : int option;
  mirror : int option;
  halo : int;
}

type plan = {
  h : int;
  chunk : int array;
  layouts : layout list;
  privatized : (int * string) list;
}

let proc_of (plan : plan) (l : layout) ~addr =
  let rel = addr - l.base in
  let rel = if rel < 0 then 0 else rel in
  let rel = match l.period with Some d when d > 0 -> rel mod d | _ -> rel in
  let rel =
    match l.mirror with
    | Some m when m > 0 && rel < m -> min rel (m - 1 - rel)
    | _ -> rel
  in
  rel / l.block mod plan.h

let layout_for (plan : plan) ~array ~phase_idx =
  List.find_opt
    (fun l ->
      String.equal l.array array
      && phase_idx >= l.first_phase
      && phase_idx <= l.last_phase)
    plan.layouts

let array_size (lcg : Lcg.t) array =
  try
    Env.eval lcg.env
      (Ir.Linearize.size ~dims:(Ir.Types.array_decl lcg.prog array).dims)
  with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> 1

let ceil_div a b = (a + b - 1) / b

let own_of ~h (l : layout) : Lattice.Own.t =
  {
    Lattice.Own.h;
    base = l.base;
    block = l.block;
    period = l.period;
    mirror = l.mirror;
  }

(* Remote accesses layout [l] induces for its array in phase
   [phase_idx], given the plan's CYCLIC(p) schedules. *)
let remote_count_enum (lcg : Lcg.t) (plan : plan) (l : layout) ~phase_idx =
  let ph = List.nth lcg.prog.phases phase_idx in
  let chunk = plan.chunk.(phase_idx) in
  let remote = ref 0 in
  Ir.Enumerate.iter lcg.prog lcg.env ph ~f:(fun ~par ~array ~addr _ ~work:_ ->
      if String.equal array l.array then begin
        let proc =
          match par with
          | Some i -> i / max 1 chunk mod plan.h
          | None -> 0
        in
        if proc_of plan l ~addr <> proc then incr remote
      end);
  !remote

(* The same count in closed form: per-processor ownership intervals
   over the hull of the phase's sites on this array, each site counted
   by window sweeps. *)
let remote_count_symbolic (lcg : Lcg.t) (plan : plan) (l : layout) ~phase_idx =
  let ph = List.nth lcg.prog.phases phase_idx in
  match Ir.Shape.of_phase lcg.prog lcg.env ph with
  | None -> None
  | Some t -> (
      try
        let sites =
          List.filter
            (fun (s : Ir.Shape.site) ->
              String.equal s.array l.array && Ir.Shape.emits t s)
            t.sites
        in
        if sites = [] then Some 0
        else
          let boxes = List.filter_map (Ir.Shape.box t) sites in
          match Lattice.bounds boxes with
          | None -> Some 0
          | Some (lo, hi) -> (
              match Owncount.intervals_of (own_of ~h:plan.h l) ~lo ~hi with
              | None -> None
              | Some sets ->
                  let chunk = plan.chunk.(phase_idx) in
                  List.fold_left
                    (fun acc (s : Ir.Shape.site) ->
                      match acc with
                      | None -> None
                      | Some r -> (
                          match
                            Owncount.per_proc ~h:plan.h ~chunk ~par:s.par
                              ~par_n:t.par_n ~base:s.base ~seq:s.seq ~sets
                          with
                          | None -> None
                          | Some (events, hits) ->
                              let tot = Array.fold_left ( + ) 0 events
                              and owned = Array.fold_left ( + ) 0 hits in
                              Some (r + tot - owned)))
                    (Some 0) sites)
      with Lattice.Overflow -> None)

let remote_count (lcg : Lcg.t) (plan : plan) (l : layout) ~phase_idx =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> remote_count_enum lcg plan l ~phase_idx
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match remote_count_symbolic lcg plan l ~phase_idx with
      | Some r -> r
      | None ->
          Lattice.note_fallback ~stage:"distribution"
            (l.array ^ " remote count");
          remote_count_enum lcg plan l ~phase_idx)

(* Does any phase of the layout's epoch write the array? *)
let epoch_written_enum (lcg : Lcg.t) (l : layout) =
  let found = ref false in
  for k = l.first_phase to l.last_phase do
    Ir.Enumerate.iter lcg.prog lcg.env (List.nth lcg.prog.phases k)
      ~f:(fun ~par:_ ~array ~addr:_ access ~work:_ ->
        if
          String.equal array l.array
          && (match access with
             | Ir.Types.Write -> true
             | Ir.Types.Read -> false)
        then found := true)
  done;
  !found

let epoch_written_symbolic (lcg : Lcg.t) (l : layout) =
  let exception Subtle in
  try
    let found = ref false in
    for k = l.first_phase to l.last_phase do
      match Ir.Shape.of_phase lcg.prog lcg.env (List.nth lcg.prog.phases k) with
      | None -> raise Subtle
      | Some t ->
          if
            List.exists
              (fun (s : Ir.Shape.site) ->
                String.equal s.array l.array
                && (match s.access with
                   | Ir.Types.Write -> true
                   | Ir.Types.Read -> false)
                && Ir.Shape.emits t s)
              t.sites
          then found := true
    done;
    Some !found
  with Subtle -> None

let epoch_written (lcg : Lcg.t) (l : layout) =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> epoch_written_enum lcg l
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match epoch_written_symbolic lcg l with
      | Some b -> b
      | None ->
          Lattice.note_fallback ~stage:"distribution"
            (l.array ^ " epoch writes");
          epoch_written_enum lcg l)

(* Ghost-zone payoff of a candidate layout: remote reads the halo would
   serve locally, and how many of the epoch's phases write the array
   (each such phase ships frontier updates). *)
let halo_savings_enum (lcg : Lcg.t) (plan0 : plan) ~p (l : layout) =
  let h = plan0.h in
  let saved = ref 0 and writing_phases = ref 0 in
  for k = l.first_phase to l.last_phase do
    let ph = List.nth lcg.prog.phases k in
    let chunk = max 1 p.(k) in
    let wrote = ref false in
    Ir.Enumerate.iter lcg.prog lcg.env ph
      ~f:(fun ~par ~array ~addr access ~work:_ ->
        if String.equal array l.array then begin
          let proc = match par with Some i -> i / chunk mod h | None -> 0 in
          match access with
          | Ir.Types.Write -> wrote := true
          | Ir.Types.Read ->
              let w = min l.halo l.block in
              if
                proc_of plan0 l ~addr <> proc
                && (proc_of plan0 l ~addr:(addr - w) = proc
                   || proc_of plan0 l ~addr:(addr + w) = proc)
              then incr saved
        end);
    if !wrote then incr writing_phases
  done;
  (!saved, !writing_phases)

let halo_savings_symbolic (lcg : Lcg.t) (plan0 : plan) ~p (l : layout) =
  let exception Subtle in
  try
    let h = plan0.h in
    let own = own_of ~h l in
    let w = min l.halo l.block in
    let saved = ref 0 and writing_phases = ref 0 in
    for k = l.first_phase to l.last_phase do
      let ph = List.nth lcg.prog.phases k in
      match Ir.Shape.of_phase lcg.prog lcg.env ph with
      | None -> raise Subtle
      | Some t ->
          let sites =
            List.filter
              (fun (s : Ir.Shape.site) ->
                String.equal s.array l.array && Ir.Shape.emits t s)
              t.sites
          in
          if
            List.exists
              (fun (s : Ir.Shape.site) ->
                match s.access with
                | Ir.Types.Write -> true
                | Ir.Types.Read -> false)
              sites
          then incr writing_phases;
          let reads =
            List.filter
              (fun (s : Ir.Shape.site) ->
                match s.access with
                | Ir.Types.Read -> true
                | Ir.Types.Write -> false)
              sites
          in
          if reads <> [] then begin
            let boxes = List.filter_map (Ir.Shape.box t) reads in
            match Lattice.bounds boxes with
            | None -> ()
            | Some (lo, hi) -> (
                match Owncount.intervals_of own ~lo:(lo - w) ~hi:(hi + w) with
                | None -> raise Subtle
                | Some owned ->
                    (* addresses within w of an owned cell but not owned:
                       the set the ghost zone turns local *)
                    let sets =
                      Array.map
                        (fun o ->
                          Lattice.Iv.subtract
                            (Lattice.Iv.union (Lattice.Iv.shift o w)
                               (Lattice.Iv.shift o (-w)))
                            o)
                        owned
                    in
                    let chunk = p.(k) in
                    List.iter
                      (fun (s : Ir.Shape.site) ->
                        match
                          Owncount.per_proc ~h ~chunk ~par:s.par ~par_n:t.par_n
                            ~base:s.base ~seq:s.seq ~sets
                        with
                        | None -> raise Subtle
                        | Some (_, hits) ->
                            saved := !saved + Array.fold_left ( + ) 0 hits)
                      reads)
          end
    done;
    Some (!saved, !writing_phases)
  with Subtle | Lattice.Overflow -> None

let halo_savings (lcg : Lcg.t) (plan0 : plan) ~p (l : layout) =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> halo_savings_enum lcg plan0 ~p l
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match halo_savings_symbolic lcg plan0 ~p l with
      | Some r -> r
      | None ->
          Lattice.note_fallback ~stage:"distribution"
            (l.array ^ " halo payoff");
          halo_savings_enum lcg plan0 ~p l)

let of_solution (lcg : Lcg.t) ~p : plan =
  let h = lcg.h in
  let privatized =
    List.concat_map
      (fun (g : Lcg.graph) ->
        List.filter_map
          (fun (n : Lcg.node) ->
            if Ir.Liveness.equal_attr n.attr Ir.Liveness.P then
              Some (n.phase_idx, g.array)
            else None)
          g.nodes)
      lcg.graphs
  in
  let plan0 = { h; chunk = p; layouts = []; privatized } in
  let layouts =
    List.concat_map
      (fun (g : Lcg.graph) ->
        let chains = Lcg.chains g in
        (* A chain made only of privatizable nodes accesses private
           copies: it needs no layout epoch of its own (opening one
           would force useless redistributions around it). *)
        let chains =
          List.filter
            (fun chain ->
              not
                (List.for_all
                   (fun pos ->
                     Ir.Liveness.equal_attr (List.nth g.nodes pos).Lcg.attr
                       Ir.Liveness.P)
                   chain))
            chains
        in
        let n_phases = List.length lcg.prog.phases in
        List.mapi
          (fun ci chain ->
            let head_pos = List.hd chain in
            let head = List.nth g.nodes head_pos in
            let last_pos = List.nth chain (List.length chain - 1) in
            let first_phase = if ci = 0 then 0 else head.phase_idx in
            let last_phase =
              if last_pos = List.length g.nodes - 1 then n_phases - 1
              else (List.nth g.nodes (last_pos + 1)).Lcg.phase_idx - 1
            in
            let chain_nodes = List.map (List.nth g.nodes) chain in
            let halo =
              List.fold_left
                (fun acc (n : Lcg.node) -> max acc (Lcg.halo lcg n))
                0 chain_nodes
            in
            let fallback =
              {
                array = g.array;
                first_phase;
                last_phase;
                base = 0;
                block = max 1 (ceil_div (array_size lcg g.array) h);
                period = None;
                mirror = None;
                halo;
              }
            in
            match Balance.side head.id with
            | None -> fallback
            | Some side -> (
                try
                  let dp = Env.eval lcg.env side.primary.par_stride in
                  let tau = Env.eval lcg.env side.primary.offset0 in
                  if dp <= 0 then fallback
                  else begin
                    let block = max 1 (dp * p.(head.phase_idx)) in
                    let plain =
                      {
                        array = g.array;
                        first_phase;
                        last_phase;
                        base = tau;
                        block;
                        period = None;
                        mirror = None;
                        halo;
                      }
                    in
                    (* Candidate shifted / reverse refinements from the
                       storage distances of every chain node. *)
                    let near =
                      try Env.eval lcg.env side.primary.span_seq + (2 * dp)
                      with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> 0
                    in
                    let eval_dists dists =
                      List.filter_map
                        (fun d ->
                          try
                            let v = Qnum.floor (Env.eval_q lcg.env d) in
                            if v > near then Some v else None
                          with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> None)
                        dists
                      |> List.sort_uniq compare
                    in
                    let periods =
                      eval_dists
                        (List.concat_map
                           (fun (n : Lcg.node) -> n.sym.shifted)
                           chain_nodes)
                    in
                    let mirrors =
                      eval_dists
                        (List.concat_map
                           (fun (n : Lcg.node) -> n.sym.reverse)
                           chain_nodes)
                    in
                    (* base variants: a stencil chain's tau_min is the
                       lowest ghost-read offset; anchoring a stride or
                       two higher can align blocks with the core
                       (written) region *)
                    let base_variants =
                      List.filter_map
                        (fun k ->
                          if k = 0 then Some plain
                          else
                            let b = tau + (k * dp) in
                            Some { plain with base = b })
                        [ 0; 1; 2 ]
                    in
                    let candidates =
                      base_variants
                      @ List.concat_map
                          (fun per ->
                            { plain with period = Some per }
                            :: List.map
                                 (fun m ->
                                   { plain with period = Some per; mirror = Some m })
                                 (List.filter (fun m -> m <= per) mirrors))
                          periods
                      @ List.map (fun m -> { plain with mirror = Some m }) mirrors
                    in
                    let refit_halo (l : layout) =
                      if l.halo <= 0 then l
                      else
                        let size = array_size lcg g.array in
                        if l.halo >= size then l
                        else
                          let stray =
                            List.fold_left
                              (fun acc (n : Lcg.node) ->
                                match
                                  ( Lcg.region_bounds lcg n ~par:0,
                                    Lcg.region_bounds lcg n ~par:1 )
                                with
                                | Some (lo0, hi0), Some (lo1, _) ->
                                    let d = max 1 (lo1 - lo0) in
                                    let up = hi0 - (l.base + d - 1) in
                                    let down = l.base - lo0 in
                                    max acc (max 0 (max up down))
                                | _ -> max acc l.halo)
                              0 chain_nodes
                          in
                          { l with halo = min l.halo stray }
                    in
                    match candidates with
                    | [ only ] -> refit_halo only
                    | _ ->
                        (* score on remote accesses, tie-break on the
                           fitted halo (smaller ghost zones mean smaller
                           frontier updates) *)
                        let score l =
                          let l = refit_halo l in
                          ( List.fold_left
                              (fun acc (n : Lcg.node) ->
                                acc
                                + remote_count lcg plan0 l ~phase_idx:n.phase_idx)
                              0 chain_nodes,
                            l.halo,
                            l )
                        in
                        let br, bh, bl =
                          List.fold_left
                            (fun (br, bh, bl) cand ->
                              let r, hh, l = score cand in
                              if r < br || (r = br && hh < bh) then (r, hh, l)
                              else (br, bh, bl))
                            (score plain)
                            (List.tl candidates)
                        in
                        ignore (br, bh);
                        bl
                  end
                with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> fallback))
          chains)
      lcg.graphs
  in
  (* Keep a halo only when it pays: the remote reads it converts to
     local (valued at t_remote each) must beat the frontier updates the
     epoch's writing phases will have to ship. *)
  let machine = Cost.default_machine ~h in
  let layouts =
    List.map
      (fun (l : layout) ->
        if l.halo <= 0 then l
        else begin
          let size = array_size lcg l.array in
          if l.halo >= size then
            if epoch_written lcg l then { l with halo = 0 }
            else l (* read-only replication always wins *)
          else begin
            let saved, writing_phases = halo_savings lcg plan0 ~p l in
            let nblocks = (size + l.block - 1) / l.block in
            let frontier_cost =
              float_of_int writing_phases
              *. Cost.frontier machine ~words:(2 * l.halo * nblocks / h)
            in
            let benefit =
              float_of_int (saved * (machine.t_remote - machine.t_local))
              /. float_of_int h
            in
            if benefit > frontier_cost then l else { l with halo = 0 }
          end
        end)
      layouts
  in
  (* Stretch every epoch to meet the next one of the same array, so the
     removal of privatized chains leaves no uncovered phases. *)
  let n_phases = List.length lcg.prog.phases in
  let layouts =
    List.concat_map
      (fun (decl : Ir.Types.array_decl) ->
        let mine =
          List.filter (fun l -> String.equal l.array decl.name) layouts
          |> List.sort (fun a b -> compare a.first_phase b.first_phase)
        in
        let rec stretch = function
          | [] -> []
          | [ last ] -> [ { last with last_phase = n_phases - 1 } ]
          | a :: (b :: _ as rest) ->
              { a with last_phase = b.first_phase - 1 } :: stretch rest
        in
        stretch mine)
      lcg.prog.arrays
  in
  { plan0 with layouts }

let block_plan (lcg : Lcg.t) : plan =
  let h = lcg.h in
  let n = List.length lcg.prog.phases in
  let chunk =
    Array.init n (fun k ->
        let counts =
          List.filter_map
            (fun (g : Lcg.graph) ->
              Option.map (fun (nd : Lcg.node) -> nd.par_n)
                (Lcg.node_of_phase g ~phase_idx:k))
            lcg.graphs
        in
        match counts with [] -> 1 | c :: _ -> max 1 (ceil_div c h))
  in
  let layouts =
    List.map
      (fun (decl : Ir.Types.array_decl) ->
        {
          array = decl.name;
          first_phase = 0;
          last_phase = n - 1;
          base = 0;
          block = max 1 (ceil_div (array_size lcg decl.name) h);
          period = None;
          mirror = None;
          halo = 0;
        })
      lcg.prog.arrays
  in
  { h; chunk; layouts; privatized = [] }

let pp ppf (plan : plan) =
  Format.fprintf ppf "@[<v>H=%d@,chunks: %s@," plan.h
    (String.concat ", "
       (Array.to_list (Array.mapi (fun k p -> Printf.sprintf "p%d=%d" k p) plan.chunk)));
  List.iter
    (fun l ->
      Format.fprintf ppf "%s phases %d..%d: CYCLIC(%d) base %d%s%s%s@," l.array
        l.first_phase l.last_phase l.block l.base
        (match l.period with Some d -> Printf.sprintf " period %d" d | None -> "")
        (match l.mirror with Some m -> Printf.sprintf " mirror %d" m | None -> "")
        (if l.halo > 0 then Printf.sprintf " halo %d" l.halo else ""))
    plan.layouts;
  (match plan.privatized with
  | [] -> ()
  | ps ->
      Format.fprintf ppf "privatized: %s@,"
        (String.concat ", "
           (List.map (fun (k, a) -> Printf.sprintf "(%d,%s)" k a) ps)));
  Format.fprintf ppf "@]"
