(* Differential tests for the static race certifier: every symbolic
   verdict is checked against the dynamic enumeration oracle
   (Ir.Autopar.independent) under sampled parameter environments.  A
   disagreement in either direction is a soundness bug, not a precision
   loss, so these tests accept zero mismatches. *)

open Symbolic
open Ir
module Racecheck = Descriptor.Racecheck

let v = Expr.var
let i = Expr.int

let params_n lo hi = Assume.of_list [ ("N", Assume.Int_range (lo, hi)) ]

let one_phase ?(params = params_n 8 24) ?(arrays = []) nest =
  Build.program ~name:"t" ~params ~arrays [ Build.phase "P" nest ]

let verdict =
  Alcotest.testable Racecheck.pp_verdict (fun a b ->
      match (a, b) with
      | Racecheck.Proved_independent, Racecheck.Proved_independent -> true
      | Racecheck.Proved_dependent _, Racecheck.Proved_dependent _ -> true
      | Racecheck.Unknown _, Racecheck.Unknown _ -> true
      | _ -> false)

let certify prog =
  Racecheck.certify prog (List.hd prog.Types.phases) ~loop_path:[]

(* ------------------------------------------------------------------ *)
(* Crafted programs: one per verdict class *)

let test_stride_exceeds_span () =
  (* A(4i + c), c = 0..3: iteration regions [4i, 4i+3] tile exactly *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ Expr.mul (i 4) (v "N") ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            do_ "c" ~lo:(int 0) ~hi:(int 3)
              [ assign [ write "A" [ (int 4 * var "k") + var "c" ] ] ];
          ])
  in
  Alcotest.check verdict "tiled writes independent" Racecheck.Proved_independent
    (certify prog)

let test_recurrence_dependent () =
  (* read A(k-1), write A(k): flow dependence at distance 1 *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 1) ~hi:(v "N" - int 1)
          [
            assign [ read "A" [ var "k" - int 1 ]; write "A" [ var "k" ] ];
          ])
  in
  match certify prog with
  | Racecheck.Proved_dependent w ->
      Alcotest.(check string) "array" "A" w.w_array;
      Alcotest.(check bool) "unit distance" true (abs w.w_distance = 1)
  | other ->
      Alcotest.failf "expected dependence, got %s"
        (Racecheck.verdict_to_string other)

let test_accumulator_dependent () =
  (* every iteration writes S(0): invariant write row *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ v "N" ]; Build.array "S" [ i 1 ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            assign
              [ read "A" [ var "k" ]; read "S" [ int 0 ]; write "S" [ int 0 ] ];
          ])
  in
  (match certify prog with
  | Racecheck.Proved_dependent w ->
      Alcotest.(check string) "array" "S" w.w_array
  | other ->
      Alcotest.failf "expected dependence, got %s"
        (Racecheck.verdict_to_string other))

let test_overlapping_spans_dependent () =
  (* write A(2k + c), c = 0..3: consecutive regions share two cells *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ Expr.mul (i 3) (v "N") ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            do_ "c" ~lo:(int 0) ~hi:(int 3)
              [ assign [ write "A" [ (int 2 * var "k") + var "c" ] ] ];
          ])
  in
  match certify prog with
  | Racecheck.Proved_dependent w ->
      Alcotest.(check string) "kind" "write-write" w.w_kind
  | other ->
      Alcotest.failf "expected dependence, got %s"
        (Racecheck.verdict_to_string other)

let test_nonaffine_unknown () =
  (* quadratic subscript: whole-array descriptor, outside the class *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ Expr.mul (v "N") (v "N") ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" * var "k" ] ] ])
  in
  match certify prog with
  | Racecheck.Unknown _ -> ()
  | other ->
      Alcotest.failf "expected unknown, got %s"
        (Racecheck.verdict_to_string other)

let test_read_only_independent () =
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ read "A" [ int 0 ] ] ])
  in
  Alcotest.check verdict "shared reads race-free" Racecheck.Proved_independent
    (certify prog)

(* ------------------------------------------------------------------ *)
(* Congruence (residue-class) separation: rows whose sequential spans
   overlap massively but whose addresses stay in per-iteration residue
   classes mod the matrix row length *)

let test_congruence_rows_of_matrix () =
  (* U(r + N*c), parallel r, sequential c: iteration r only ever
     touches addresses = r (mod N).  The span-based tests cannot
     separate the rows (spans ~ N^2 dwarf the offset gap), the
     congruence closure can. *)
  let prog =
    one_phase
      ~arrays:[ Build.array "U" [ Expr.mul (v "N") (v "N") ] ]
      Build.(
        do_ "r" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            do_ "c" ~lo:(int 1) ~hi:(v "N" - int 1)
              [
                assign
                  [
                    read "U" [ var "r" + (var "N" * (var "c" - int 1)) ];
                    write "U" [ var "r" + (var "N" * var "c") ];
                  ];
              ];
          ])
  in
  Alcotest.check verdict "row-confined accesses independent"
    Racecheck.Proved_independent (certify prog)

let test_congruence_row_crossing_not_certified () =
  (* Same shape but the write lands on the *next* row: iterations r and
     r+1 share cells, so a certificate would be unsound.  The verdict
     may be Unknown (the rows are not dense, so no witness either) but
     must never be Proved_independent. *)
  let prog =
    one_phase
      ~arrays:[ Build.array "U" [ Expr.mul (v "N") (Expr.add (v "N") Expr.one) ] ]
      Build.(
        do_ "r" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            do_ "c" ~lo:(int 1) ~hi:(v "N" - int 1)
              [
                assign
                  [
                    read "U" [ var "r" + (var "N" * (var "c" - int 1)) ];
                    write "U" [ var "r" + int 1 + (var "N" * var "c") ];
                  ];
              ];
          ])
  in
  match certify prog with
  | Racecheck.Proved_independent ->
      Alcotest.fail "row-crossing writes wrongly certified independent"
  | _ -> ()

(* The adi row sweep is the motivating kernel: its N-strided recurrence
   rows were Unknown before the congruence closure.  Pin the upgraded
   verdict and replay it against the dynamic oracle on sampled
   environments. *)
let test_congruence_adi_rowsweep () =
  let prog = Codes.Adi.program in
  let ph =
    List.find
      (fun (p : Types.phase) -> String.equal p.phase_name "ROWSWEEP")
      prog.Types.phases
  in
  (match Racecheck.certify prog ph ~loop_path:[] with
  | Racecheck.Proved_independent -> ()
  | other ->
      Alcotest.failf "adi ROWSWEEP no longer certified: %s"
        (Racecheck.verdict_to_string other));
  let st = Random.State.make [| 19; 99; 7 |] in
  List.iter
    (fun _ ->
      let env = Assume.sample ~state:st prog.Types.params in
      Alcotest.(check bool) "oracle confirms adi ROWSWEEP independence" true
        (Autopar.independent prog env ph ~loop_path:[]))
    [ (); (); () ]

(* ------------------------------------------------------------------ *)
(* Differential harness: certifier vs. dynamic oracle on the registry *)

let sample_envs (prog : Types.program) k =
  let st = Random.State.make [| 7; 23; 1999 |] in
  List.init k (fun _ -> Assume.sample ~state:st prog.Types.params)

(* Exercise every loop of every phase of every benchmark.  The oracle
   answer may legitimately vary by environment when the certifier says
   Unknown; a proof must hold on every sample. *)
let test_differential_registry () =
  let checked = ref 0 and proved = ref 0 in
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let prog = e.program in
      let envs = sample_envs prog 3 in
      List.iter
        (fun (ph : Types.phase) ->
          List.iter
            (fun path ->
              incr checked;
              let oracle env = Autopar.independent prog env ph ~loop_path:path in
              match Racecheck.certify prog ph ~loop_path:path with
              | Racecheck.Proved_independent ->
                  incr proved;
                  List.iter
                    (fun env ->
                      Alcotest.(check bool)
                        (Printf.sprintf
                           "%s/%s: certified independence confirmed by oracle"
                           e.name ph.phase_name)
                        true (oracle env))
                    envs
              | Racecheck.Proved_dependent w ->
                  incr proved;
                  List.iter
                    (fun env ->
                      Alcotest.(check bool)
                        (Printf.sprintf
                           "%s/%s: certified dependence (%s) confirmed by \
                            oracle"
                           e.name ph.phase_name w.w_note)
                        false (oracle env))
                    envs
              | Racecheck.Unknown _ -> ())
            (Autopar.loop_paths ph.nest))
        prog.phases)
    Codes.Registry.all;
  (* the certifier must actually decide a healthy share of the
     benchmark loops - it is the primary procedure, not a corner case *)
  Alcotest.(check bool)
    (Printf.sprintf "decides at least half the loops (%d/%d)" !proved !checked)
    true
    (2 * !proved >= !checked)

(* The declared parallel loop of every benchmark phase must never be
   refuted by the certifier (it may be Unknown, e.g. TFFT2's symbolic
   strides, but a Proved_dependent would mean a racy benchmark). *)
let test_registry_marked_loops_certified () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      List.iter
        (fun (ph : Types.phase) ->
          let paths = Autopar.loop_paths ph.nest in
          List.iter
            (fun path ->
              let rec at (l : Types.loop) = function
                | [] -> l
                | k :: rest ->
                    let inner =
                      List.filter_map
                        (function Types.Loop i -> Some i | _ -> None)
                        l.body
                    in
                    at (List.nth inner k) rest
              in
              if (at ph.nest path).parallel then
                match Racecheck.certify e.program ph ~loop_path:path with
                | Racecheck.Proved_dependent w ->
                    Alcotest.failf "%s/%s marked loop refuted: %s" e.name
                      ph.phase_name w.w_note
                | _ -> ())
            paths)
        e.program.phases)
    Codes.Registry.all

(* ------------------------------------------------------------------ *)
(* Certified marking through Autopar *)

let strip (prog : Types.program) : Types.program =
  {
    prog with
    phases =
      List.map
        (fun (ph : Types.phase) ->
          { ph with Types.nest = Autopar.clear_markings ph.nest })
        prog.phases;
  }

let par_vars (prog : Types.program) =
  List.map
    (fun ph ->
      let ctx = Phase.analyze prog ph in
      Option.map (fun (l : Phase.loop_info) -> l.var) ctx.par)
    prog.phases

let test_certified_mark_recovers_markings () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let stripped = strip e.program in
      let marked = Autopar.mark ~certify:Racecheck.certifier stripped in
      List.iter2
        (fun original recovered ->
          match original with
          | Some v ->
              Alcotest.(check (option string))
                (e.name ^ " recovers " ^ v)
                (Some v) recovered
          | None -> ())
        (par_vars e.program) (par_vars marked))
    Codes.Registry.all

let test_no_mismatches_on_registry () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let stripped = strip e.program in
      List.iter
        (fun ph ->
          let d = Autopar.decide ~certify:Racecheck.certifier stripped ph in
          List.iter
            (fun (r : Autopar.probe_report) ->
              Alcotest.failf "%s: RACE-ORACLE-MISMATCH at loop %s" e.name r.var)
            (Autopar.mismatches d))
        stripped.phases)
    Codes.Registry.all

let test_decision_source_recorded () =
  (* a loop the certifier decides is marked as Certified, and the
     decision's probe trail records the static verdict *)
  let prog =
    one_phase
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" ] ] ])
  in
  let d =
    Autopar.decide ~certify:Racecheck.certifier prog (List.hd prog.phases)
  in
  (match d.chosen with
  | Some ([], Autopar.Certified) -> ()
  | Some (_, Autopar.Sampled) -> Alcotest.fail "expected a certified decision"
  | _ -> Alcotest.fail "expected the root loop to be chosen");
  match d.probes with
  | [ { static_verdict = Some `Independent; sampled = Some true; _ } ] -> ()
  | _ -> Alcotest.fail "probe trail incomplete"

let () =
  Alcotest.run "racecheck"
    [
      ( "crafted",
        [
          Alcotest.test_case "tiled writes" `Quick test_stride_exceeds_span;
          Alcotest.test_case "recurrence" `Quick test_recurrence_dependent;
          Alcotest.test_case "accumulator" `Quick test_accumulator_dependent;
          Alcotest.test_case "overlapping spans" `Quick
            test_overlapping_spans_dependent;
          Alcotest.test_case "non-affine" `Quick test_nonaffine_unknown;
          Alcotest.test_case "read-only" `Quick test_read_only_independent;
        ] );
      ( "congruence",
        [
          Alcotest.test_case "rows of a matrix" `Quick
            test_congruence_rows_of_matrix;
          Alcotest.test_case "row-crossing not certified" `Quick
            test_congruence_row_crossing_not_certified;
          Alcotest.test_case "adi rowsweep certified" `Quick
            test_congruence_adi_rowsweep;
        ] );
      ( "differential",
        [
          Alcotest.test_case "registry vs oracle" `Quick
            test_differential_registry;
          Alcotest.test_case "marked loops never refuted" `Quick
            test_registry_marked_loops_certified;
        ] );
      ( "autopar",
        [
          Alcotest.test_case "certified mark recovers markings" `Quick
            test_certified_mark_recovers_markings;
          Alcotest.test_case "no oracle mismatches" `Quick
            test_no_mismatches_on_registry;
          Alcotest.test_case "decision source" `Quick
            test_decision_source_recorded;
        ] );
    ]
