lib/descriptor/offset.ml: Expr List Pd Probe Symbolic
