(** Phase context: the analyzed shape of one loop nest.

    Extracts, from a (normalized) phase, the ordered loop list, the
    reference sites with linearized subscripts, and the assumption set
    (parameter domains plus index ranges) under which all symbolic
    reasoning about the phase happens. *)

open Symbolic
open Types

type loop_info = {
  var : string;
  count : Expr.t;  (** trip count [hi+1] of the normalized loop *)
  hi : Expr.t;  (** inclusive upper bound (lower is 0) *)
  parallel : bool;
}

type site = {
  ref_ : array_ref;
  phi : Expr.t;  (** linearized flat subscript *)
  enclosing : string list;  (** enclosing loop vars, outermost first *)
}

type t = {
  prog : program;  (** owning program (array declarations, params) *)
  phase : phase;
  loops : loop_info list;  (** outermost first *)
  par : loop_info option;  (** the parallel loop, if any *)
  sites : site list;  (** textual order *)
  assume : Assume.t;  (** program params + one [Expr_range] per loop *)
}

exception Invalid_phase of string

val analyze : program -> phase -> t
(** Normalizes the nest, checks the at-most-one-parallel-loop phase
    condition, linearizes every reference.
    @raise Invalid_phase when more than one loop is parallel or an
    array is undeclared. *)

val key : t -> Artifact.Key.t
(** {!Ir.Types.phase_context_key} of the analyzed phase - the context's
    identity for caches whose values depend on it.  Deliberately
    excludes sibling phases, so per-phase artifacts survive edits to
    the rest of the program (warm-serving incremental reuse). *)

val sites_of_array : t -> string -> site list
val loop_index : t -> string -> int
(** Position of a loop var in [loops]. @raise Not_found otherwise. *)

val par_count : t -> Expr.t
(** Trip count of the parallel loop ([1] if the phase has none: the
    whole nest is a single "iteration"). *)
