lib/locality/stability.mli: Env Format Ir Symbolic Table1
