lib/ilp/distribution.ml: Array Balance Cost Env Expr Format Ir Lcg List Locality Option Printf Qnum String Symbolic
