open Symbolic

type config = {
  count : int;
  seed : int;
  jobs : int;
  deep_every : int;
  determinism_sample : int;
  wall_cap : float;
  out_dir : string;
  skew : int;
  shrink : bool;
}

let default_config =
  {
    count = 200;
    seed = 42;
    jobs = 4;
    deep_every = 25;
    determinism_sample = 8;
    wall_cap = 0.;
    out_dir = Filename.concat "examples" "programs";
    skew = 0;
    shrink = true;
  }

type finding = {
  f_index : int;
  f_profile : string;
  f_check : string;
  f_detail : string;
  f_source : string;
  f_shrunk : string option;
  f_repro : string option;
}

type stats = {
  s_ran : int;
  s_findings : finding list;
  s_wall_capped : bool;
}

(* ------------------------------------------------------------------ *)
(* The worker side.  Jobs and results cross the fork boundary by
   Marshal, so both are plain records of ints/strings/variants. *)

type fz_job = { fz_index : int; fz_seed : int; fz_deep : bool; fz_skew : int }

type wire_verdict = W_pass | W_skip of string | W_fail of string

type fz_result = { fr_verdicts : (string * wire_verdict) list }

let profile_of j = if j.fz_deep then Gen.deep else Gen.default

let fz_worker ~attempt:_ (j : fz_job) =
  (* The pool resets metrics / artifact stores / intern state per job;
     the fault-injection skew is ours to (re)install. *)
  Lattice.test_card_skew := j.fz_skew;
  let prog = Gen.program (profile_of j) ~seed:j.fz_seed ~index:j.fz_index in
  {
    fr_verdicts =
      List.map
        (fun (name, v) ->
          ( name,
            match v with
            | Differ.Pass -> W_pass
            | Differ.Skip s -> W_skip s
            | Differ.Fail d -> W_fail d ))
        (Differ.battery prog);
  }

(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let first_line s =
  let line = match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  if String.length line > 160 then String.sub line 0 160 ^ "..." else line

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* Shrink (under the campaign's skew) and persist one finding. *)
let materialize ~log cfg (j : fz_job) check detail =
  let profile = if j.fz_deep then "deep" else "default" in
  let prog = Gen.program (profile_of j) ~seed:j.fz_seed ~index:j.fz_index in
  let source = Frontend.Unparse.to_string prog in
  let saved = !Lattice.test_card_skew in
  Fun.protect
    ~finally:(fun () -> Lattice.test_card_skew := saved)
    (fun () ->
      Lattice.test_card_skew := cfg.skew;
      let c = Differ.find check in
      let keep p = match c.run p with Differ.Fail _ -> true | _ -> false in
      if not (keep prog) then
        (* A worker-only failure: keep the full program on record but
           flag that the parent could not reproduce it in-process. *)
        {
          f_index = j.fz_index;
          f_profile = profile;
          f_check = check;
          f_detail = detail ^ " (not reproducible in-process)";
          f_source = source;
          f_shrunk = None;
          f_repro = None;
        }
      else begin
        let small = if cfg.shrink then Shrink.run ~keep prog else prog in
        let shrunk = Frontend.Unparse.to_string small in
        let shrunk_detail =
          match c.run small with Differ.Fail d -> d | _ -> detail
        in
        mkdir_p cfg.out_dir;
        let stem = Printf.sprintf "fuzz_%s_s%d_%d" check j.fz_seed j.fz_index in
        let path = Filename.concat cfg.out_dir (stem ^ ".dsm") in
        write_file path
          (Printf.sprintf "# %s differential failure (seed %d, index %d)\n# %s\n%s"
             check j.fz_seed j.fz_index (first_line shrunk_detail) shrunk);
        write_file (path ^ ".golden")
          (Printf.sprintf "check: %s\nprofile: %s\nseed: %d\nindex: %d\ndetail: %s\n"
             check profile j.fz_seed j.fz_index shrunk_detail);
        log (Printf.sprintf "wrote %s" path);
        {
          f_index = j.fz_index;
          f_profile = profile;
          f_check = check;
          f_detail = shrunk_detail;
          f_source = source;
          f_shrunk = Some shrunk;
          f_repro = Some path;
        }
      end)

let chunks_of n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: xs ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 xs
        else go acc (x :: cur) (k + 1) xs
  in
  go [] [] 0 l

let run ?(log = fun _ -> ()) cfg =
  let t0 = Unix.gettimeofday () in
  let jobs =
    List.init cfg.count (fun i ->
        {
          fz_index = i;
          fz_seed = cfg.seed;
          fz_deep = cfg.deep_every > 0 && i > 0 && i mod cfg.deep_every = 0;
          fz_skew = cfg.skew;
        })
  in
  let chunk_size = max (4 * cfg.jobs) 32 in
  let capped = ref false in
  let ran = ref 0 in
  let completed = ref [] (* (job, outcome) in submission order, reversed *) in
  List.iter
    (fun chunk ->
      if (not !capped)
         && (cfg.wall_cap <= 0. || Unix.gettimeofday () -. t0 < cfg.wall_cap)
      then begin
        let outcomes, _metrics =
          Core.Pool.map ~workers:cfg.jobs ~f:fz_worker chunk
        in
        List.iter2 (fun j o -> completed := (j, o) :: !completed) chunk outcomes;
        List.iter (function Core.Pool.Done _ -> incr ran | _ -> ()) outcomes;
        log
          (Printf.sprintf "ran %d/%d programs (%.1fs)" !ran cfg.count
             (Unix.gettimeofday () -. t0))
      end
      else capped := true)
    (chunks_of chunk_size jobs);
  let completed = List.rev !completed in
  if !capped then
    log
      (Printf.sprintf "wall cap %.0fs reached after %d/%d programs" cfg.wall_cap
         !ran cfg.count);
  (* Differential findings, in index order: the first failing check of
     every failing battery, reproduced and shrunk in-process. *)
  let findings = ref [] in
  List.iter
    (fun (j, outcome) ->
      match outcome with
      | Core.Pool.Done d -> (
          let (r : fz_result) = d.value in
          match
            List.find_opt
              (fun (_, v) -> match v with W_fail _ -> true | _ -> false)
              r.fr_verdicts
          with
          | Some (check, W_fail detail) ->
              log
                (Printf.sprintf "finding: index %d fails %s: %s" j.fz_index
                   check (first_line detail));
              findings := materialize ~log cfg j check detail :: !findings
          | _ -> ())
      | Core.Pool.Failed { attempts; reasons } ->
          findings :=
            {
              f_index = j.fz_index;
              f_profile = (if j.fz_deep then "deep" else "default");
              f_check = "worker-crash";
              f_detail =
                Printf.sprintf "battery crashed after %d attempts: %s" attempts
                  (String.concat "; " reasons);
              f_source =
                Frontend.Unparse.to_string
                  (Gen.program (profile_of j) ~seed:j.fz_seed ~index:j.fz_index);
              f_shrunk = None;
              f_repro = None;
            }
            :: !findings)
    completed;
  (* 1-vs-N worker determinism: the verdict vectors of a sample prefix
     must be identical when recomputed on a single worker. *)
  let det_n = min cfg.determinism_sample (List.length completed) in
  if det_n > 0 && cfg.jobs > 1 then begin
    let sample = List.filteri (fun i _ -> i < det_n) completed in
    let solo, _ =
      Core.Pool.map ~workers:1 ~f:fz_worker (List.map fst sample)
    in
    List.iter2
      (fun (j, first) second ->
        match (first, second) with
        | Core.Pool.Done a, Core.Pool.Done b ->
            let (ra : fz_result) = a.value and (rb : fz_result) = b.value in
            if ra.fr_verdicts <> rb.fr_verdicts then
              findings :=
                {
                  f_index = j.fz_index;
                  f_profile = "campaign";
                  f_check = "determinism";
                  f_detail =
                    Printf.sprintf
                      "index %d: verdicts differ between %d workers and 1 worker"
                      j.fz_index cfg.jobs;
                  f_source = "";
                  f_shrunk = None;
                  f_repro = None;
                }
                :: !findings
        | _ -> ())
      sample solo;
    log (Printf.sprintf "determinism: re-ran %d programs on 1 worker" det_n)
  end;
  {
    s_ran = !ran;
    s_findings =
      List.sort (fun a b -> compare a.f_index b.f_index) (List.rev !findings);
    s_wall_capped = !capped;
  }
