(* Tests for the DSM simulator: conservation invariants, the H=1
   degenerate case, halo semantics, redistribution accounting, and
   baseline-vs-LCG behaviour. *)

open Symbolic
open Ilp
open Dsmsim

let pipeline entry_name size h =
  let e = Codes.Registry.find entry_name in
  let env = e.env_of_size size in
  Core.Pipeline.run e.program ~env ~h

(* Total access events in a program (oracle). *)
let total_accesses prog env =
  let n = ref 0 in
  List.iter
    (fun ph ->
      Ir.Enumerate.iter prog env ph ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work:_ ->
          incr n))
    prog.Ir.Types.phases;
  !n

let test_h1_all_local () =
  Probe.with_seed 50 (fun () ->
      List.iter
        (fun name ->
          let t = pipeline name 3 1 in
          let r = Core.Pipeline.simulate t in
          Alcotest.(check int) (name ^ " no remote") 0 r.total_remote;
          (* At H=1 the parallel run with no communication equals the
             sequential run. *)
          Alcotest.(check bool)
            (name ^ " efficiency 100%")
            true
            (abs_float (r.efficiency -. 1.0) < 1e-9))
        [ "tfft2"; "jacobi2d"; "matmul" ])

let test_conservation () =
  Probe.with_seed 51 (fun () ->
      let t = pipeline "tfft2" 3 4 in
      let r = Core.Pipeline.simulate t in
      let expected = total_accesses t.prog t.env in
      Alcotest.(check int) "local + remote = all accesses" expected
        (r.total_local + r.total_remote);
      (* per-phase stats sum to the totals *)
      let sum f = List.fold_left (fun a p -> a + f p) 0 r.phases in
      Alcotest.(check int) "phase locals" r.total_local
        (sum (fun (p : Exec.phase_stats) -> p.local));
      Alcotest.(check int) "phase remotes" r.total_remote
        (sum (fun (p : Exec.phase_stats) -> p.remote)))

let test_seq_time_independent_of_plan () =
  Probe.with_seed 52 (fun () ->
      let t = pipeline "swim" 3 4 in
      let a = Core.Pipeline.simulate t in
      let b = Core.Pipeline.simulate_baseline t in
      Alcotest.(check bool) "same seq reference" true
        (abs_float (a.seq_time -. b.seq_time) < 1e-9);
      Alcotest.(check bool) "matches seq_env_run" true
        (abs_float (a.seq_time -. Exec.seq_env_run t.lcg t.machine) < 1e-9))

let test_proc_of_iteration () =
  Alcotest.(check int) "cyclic(2) i=5 h=4" 2 (Exec.proc_of_iteration ~chunk:2 ~h:4 5);
  Alcotest.(check int) "wraps" 0 (Exec.proc_of_iteration ~chunk:2 ~h:4 8);
  Alcotest.(check int) "chunk 0 guarded" 3 (Exec.proc_of_iteration ~chunk:0 ~h:4 3)

let test_halo_reduces_remote () =
  Probe.with_seed 53 (fun () ->
      (* Jacobi with the LCG plan (halo'd) must beat the same plan with
         halos stripped. *)
      let t = pipeline "jacobi2d" 4 4 in
      let r = Core.Pipeline.simulate t in
      let stripped =
        {
          t.plan with
          Distribution.layouts =
            List.map
              (fun (l : Distribution.layout) -> { l with halo = 0 })
              t.plan.layouts;
        }
      in
      let r0 = Exec.run t.lcg stripped t.machine in
      Alcotest.(check bool) "halo reduces remote" true
        (r.total_remote < r0.total_remote);
      Alcotest.(check bool) "halo improves efficiency" true
        (r.efficiency > r0.efficiency))

let test_redistribution_charged () =
  Probe.with_seed 54 (fun () ->
      (* TFFT2 has C edges: the run must record redistribution events
         with positive word counts. *)
      let t = pipeline "tfft2" 3 4 in
      let r = Core.Pipeline.simulate t in
      let redists =
        List.filter (fun (c : Exec.comm_stats) -> c.words > 0) r.comms
      in
      Alcotest.(check bool) "some redistribution" true (List.length redists > 0);
      List.iter
        (fun (c : Exec.comm_stats) ->
          Alcotest.(check bool) "positive time" true (c.time > 0.0))
        redists)

let test_lcg_beats_block () =
  Probe.with_seed 55 (fun () ->
      (* The headline shape: at moderate H the locality-derived plan
         dominates or matches the naive BLOCK plan on every code. *)
      List.iter
        (fun name ->
          let e = Codes.Registry.find name in
          let t = pipeline name e.default_size 8 in
          let eff, base = Core.Pipeline.efficiency t in
          Alcotest.(check bool)
            (Printf.sprintf "%s: LCG (%.2f) >= 0.9 * BLOCK (%.2f)" name eff base)
            true
            (eff >= (0.9 *. base) -. 1e-9))
        (* trisolve is the designed-conservative kernel: its triangular
           regions defeat the balanced condition, and at its tiny default
           size the resulting redistribution loses to BLOCK - which is
           the honest expected outcome, asserted separately. *)
        (List.filter (fun n -> n <> "trisolve") Codes.Registry.names))

let test_privatized_always_local () =
  Probe.with_seed 56 (fun () ->
      (* F3's Y is privatizable: its accesses never count as remote.
         Strip Y's halo and verify F3 still reports no remote Y access
         by comparing against a plan without privatization. *)
      let t = pipeline "tfft2" 3 2 in
      let r = Core.Pipeline.simulate t in
      let no_priv = { t.plan with Distribution.privatized = [] } in
      let r2 = Exec.run t.lcg no_priv t.machine in
      Alcotest.(check bool) "privatization can only help" true
        (r.total_remote <= r2.total_remote))

let test_replicated_read_only_local () =
  Probe.with_seed 57 (fun () ->
      (* matmul's A is read by every iteration (replication): all A
         accesses must be local under the LCG plan. *)
      let t = pipeline "matmul" 3 4 in
      let r = Core.Pipeline.simulate t in
      Alcotest.(check int) "no remote at all" 0 r.total_remote)

let test_steady_state_rounds () =
  Probe.with_seed 61 (fun () ->
      (* Replaying R rounds of a repeating program scales the work
         linearly; per-round parallel time converges (no redistribution
         inside an all-L cycle). *)
      let t = pipeline "jacobi2d" 4 4 in
      let r1 = Exec.run ~rounds:1 t.lcg t.plan t.machine in
      let r4 = Exec.run ~rounds:4 t.lcg t.plan t.machine in
      Alcotest.(check int) "4x accesses"
        (4 * (r1.total_local + r1.total_remote))
        (r4.total_local + r4.total_remote);
      Alcotest.(check bool) "seq scales" true
        (abs_float (r4.seq_time -. (4.0 *. r1.seq_time)) < 1e-6);
      Alcotest.(check bool) "efficiency stable" true
        (abs_float (r4.efficiency -. r1.efficiency) < 0.02))

let test_cost_model_tracks_simulator () =
  Probe.with_seed 62 (fun () ->
      (* The solver's predicted load-imbalance D is an upper-ish proxy:
         with D = 0 predicted (even division), the simulator must show
         near-equal phase times at every H tested. *)
      let t = pipeline "matmul" 4 4 in
      Alcotest.(check bool) "predicted D = 0" true (t.solution.d_cost < 1e-9);
      let r = Core.Pipeline.simulate t in
      Alcotest.(check int) "no remote" 0 r.total_remote;
      Alcotest.(check bool) "perfect efficiency" true (r.efficiency > 0.999))

let test_per_proc_stats () =
  Probe.with_seed 66 (fun () ->
      let t = pipeline "matmul" 3 4 in
      let r = Core.Pipeline.simulate t in
      (* per-processor compute sums to the total abstract work *)
      let total_work = ref 0 in
      List.iter
        (fun ph ->
          Ir.Enumerate.iter t.prog t.env ph
            ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work -> total_work := !total_work + work))
        t.prog.phases;
      let sum =
        Array.fold_left
          (fun acc (s : Exec.proc_stats) -> acc +. s.compute_time)
          0.0 r.per_proc
      in
      Alcotest.(check int) "compute conserved" !total_work
        (int_of_float sum);
      Alcotest.(check int) "h entries" 4 (Array.length r.per_proc))

let test_machine_monotonicity () =
  Probe.with_seed 65 (fun () ->
      (* remote counts depend only on the plan; times grow with remote
         cost parameters *)
      let t = pipeline "adi" 4 4 in
      let base = { (Ilp.Cost.default_machine ~h:4) with t_remote = 10 } in
      let slow = { base with t_remote = 100 } in
      let r1 = Exec.run t.lcg t.plan base in
      let r2 = Exec.run t.lcg t.plan slow in
      Alcotest.(check int) "remote invariant" r1.total_remote r2.total_remote;
      Alcotest.(check bool) "slower remote, slower run" true
        (r2.par_time >= r1.par_time);
      let pricey = { base with t_startup = 10_000 } in
      let r3 = Exec.run t.lcg t.plan pricey in
      Alcotest.(check bool) "startup hits redistribution" true
        (r3.par_time > r1.par_time))

(* ------------------------------------------------------------------ *)
(* Dataflow validation: the strongest property in the suite - under
   the plan plus the generated communication schedule, every read of
   every code observes the sequentially-correct value. *)

let test_dataflow_all_codes () =
  Probe.with_seed 63 (fun () ->
      List.iter
        (fun (e : Codes.Registry.entry) ->
          List.iter
            (fun h ->
              let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h in
              let rounds = if e.program.repeats then 2 else 1 in
              let r = Validate.run ~rounds t.lcg t.plan in
              Alcotest.(check int)
                (Printf.sprintf "%s H=%d: no stale reads (%d reads)" e.name h
                   r.reads)
                0 r.stale)
            (* high H exercised deliberately: tiny blocks once exposed a
               window/strip mismatch and an uninitialized-replica bug *)
            [ 2; 8; 32; 64 ])
        Codes.Registry.all)

let test_dataflow_catches_missing_comm () =
  Probe.with_seed 64 (fun () ->
      (* sanity of the validator itself: dropping the frontier messages
         from the schedule must surface as stale ghost reads, and
         dropping redistribution messages as stale remote epochs *)
      let t = pipeline "jacobi2d" 4 4 in
      let good = Validate.run ~rounds:2 t.lcg t.plan in
      Alcotest.(check int) "good schedule validates" 0 good.stale;
      let sched = Dsmsim.Comm.generate t.lcg t.plan in
      let no_frontier = Dsmsim.Comm.redistributions sched in
      let bad = Validate.run ~rounds:2 ~sched:no_frontier t.lcg t.plan in
      Alcotest.(check bool) "missing frontier updates detected" true
        (bad.stale > 0);
      let ta = pipeline "adi" 4 4 in
      let sched_a = Dsmsim.Comm.generate ta.lcg ta.plan in
      let no_redist = Dsmsim.Comm.frontiers sched_a in
      let bad_a = Validate.run ~rounds:2 ~sched:no_redist ta.lcg ta.plan in
      Alcotest.(check bool) "missing redistribution detected" true
        (bad_a.stale > 0))

(* ------------------------------------------------------------------ *)
(* Communication generation *)

(* Regression: [Comm.array_size] used to swallow evaluation failures
   and return 0, so an array whose declared size cannot be evaluated
   produced size-0 strips and nonsense messages.  It now returns
   [None] and [generate] omits that array's events (reporting through
   [on_error]) while still scheduling every healthy array. *)
let test_comm_unevaluable_size () =
  Probe.with_seed 77 (fun () ->
      let open Ir.Build in
      let n = var "N" in
      (* A is a healthy N*N array moved by a transpose (guaranteed
         redistribution); B is identical except its declared size
         references the unbound parameter M *)
      let prog =
        program ~name:"phantom"
          ~params:
            (Symbolic.Assume.of_list [ ("N", Symbolic.Assume.Int_range (8, 32)) ])
          ~arrays:[ array "A" [ n * n ]; array "B" [ var "M" ] ]
          [
            phase "W"
              (doall "c" ~lo:(int 0)
                 ~hi:(n - int 1)
                 [
                   do_ "r" ~lo:(int 0)
                     ~hi:(n - int 1)
                     [
                       assign
                         [
                           write "A" [ var "r" + (n * var "c") ];
                           write "B" [ var "r" + (n * var "c") ];
                         ];
                     ];
                 ]);
            phase "T"
              (doall "c" ~lo:(int 0)
                 ~hi:(n - int 1)
                 [
                   do_ "r" ~lo:(int 0)
                     ~hi:(n - int 1)
                     [
                       assign
                         [
                           read "A" [ var "c" + (n * var "r") ];
                           read "B" [ var "c" + (n * var "r") ];
                         ];
                     ];
                 ]);
          ]
      in
      let env = Env.of_list [ ("N", 8) ] in
      let t = Core.Pipeline.run prog ~env ~h:4 in
      Alcotest.(check (option int))
        "A size evaluates" (Some 64)
        (Comm.array_size t.lcg "A");
      Alcotest.(check (option int))
        "B size unevaluable" None
        (Comm.array_size t.lcg "B");
      let errors = ref [] in
      let sched =
        Comm.generate ~on_error:(fun m -> errors := m :: !errors) t.lcg t.plan
      in
      let arrays_in_sched =
        List.map
          (function
            | Comm.Redistribute { array; _ } | Comm.Frontier { array; _ } ->
                array)
          sched
      in
      Alcotest.(check bool) "A still scheduled" true
        (List.mem "A" arrays_in_sched);
      Alcotest.(check bool) "B omitted" false (List.mem "B" arrays_in_sched);
      Alcotest.(check bool) "omission reported" true
        (List.exists
           (fun m -> String.length m >= 7 && String.sub m 0 7 = "array B")
           !errors);
      (* no message of any surviving event may be empty: the size-0
         strips of the old behaviour are gone *)
      List.iter
        (function
          | Comm.Redistribute { messages; _ } | Comm.Frontier { messages; _ }
            ->
              List.iter
                (fun (m : Comm.message) ->
                  Alcotest.(check bool) "positive words" true (m.words > 0))
                messages)
        sched)

let test_comm_matches_exec () =
  Probe.with_seed 58 (fun () ->
      (* the generated redistribution schedule moves exactly the words
         the simulator independently accounts for *)
      let t = pipeline "tfft2" 4 4 in
      let r = Core.Pipeline.simulate t in
      let sched = Comm.generate t.lcg t.plan in
      let exec_redist_words =
        List.fold_left
          (fun acc (c : Exec.comm_stats) ->
            (* frontier events in Exec carry after-phase semantics; the
               redistribution ones were emitted with matching word
               counts at epoch entries.  Separate by looking the event
               up in the schedule. *)
            acc + c.words)
          0
          (List.filter
             (fun (c : Exec.comm_stats) ->
               List.exists
                 (function
                   | Comm.Redistribute { array; before_phase; _ } ->
                       array = c.array && before_phase = c.before_phase
                   | Comm.Frontier _ -> false)
                 sched)
             r.comms)
      in
      let sched_redist_words = Comm.total_words (Comm.redistributions sched) in
      Alcotest.(check int) "redistribution words agree" exec_redist_words
        sched_redist_words)

let test_comm_aggregation () =
  Probe.with_seed 59 (fun () ->
      let t = pipeline "tfft2" 4 4 in
      let sched = Comm.generate t.lcg t.plan in
      List.iter
        (fun e ->
          let msgs =
            match e with
            | Comm.Redistribute { messages; _ } | Comm.Frontier { messages; _ }
              -> messages
          in
          (* aggregation: at most one message per (src,dst) pair *)
          let pairs = List.map (fun (m : Comm.message) -> (m.src, m.dst)) msgs in
          Alcotest.(check int) "one message per pair"
            (List.length (List.sort_uniq compare pairs))
            (List.length pairs);
          List.iter
            (fun (m : Comm.message) ->
              Alcotest.(check bool) "no self-messages" true (m.src <> m.dst);
              (* ranges are sorted, disjoint, and sum to words *)
              let sum =
                List.fold_left (fun a (lo, hi) -> a + hi - lo + 1) 0 m.ranges
              in
              Alcotest.(check int) "range words" m.words sum;
              let rec disjoint = function
                | (_, hi) :: (((lo2, _) :: _) as rest) ->
                    hi < lo2 && disjoint rest
                | _ -> true
              in
              Alcotest.(check bool) "sorted disjoint ranges" true
                (disjoint m.ranges))
            msgs)
        sched)

let test_comm_frontier_for_stencil () =
  Probe.with_seed 60 (fun () ->
      let t = pipeline "jacobi2d" 4 4 in
      let sched = Comm.generate t.lcg t.plan in
      (* jacobi: no redistribution (single chain per array), but
         frontier updates after the writing phases *)
      Alcotest.(check int) "no redistribution" 0
        (List.length (Comm.redistributions sched));
      Alcotest.(check bool) "has frontier events" true
        (List.length (Comm.frontiers sched) > 0))

let () =
  Alcotest.run "dsmsim"
    [
      ( "invariants",
        [
          Alcotest.test_case "H=1 all local" `Quick test_h1_all_local;
          Alcotest.test_case "access conservation" `Quick test_conservation;
          Alcotest.test_case "seq reference stable" `Quick
            test_seq_time_independent_of_plan;
          Alcotest.test_case "iteration scheduling" `Quick test_proc_of_iteration;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "halo reduces remote" `Quick test_halo_reduces_remote;
          Alcotest.test_case "redistribution charged" `Quick
            test_redistribution_charged;
          Alcotest.test_case "privatized local" `Quick test_privatized_always_local;
          Alcotest.test_case "replicated read-only" `Quick
            test_replicated_read_only_local;
          Alcotest.test_case "steady-state rounds" `Quick
            test_steady_state_rounds;
          Alcotest.test_case "cost model tracks simulator" `Quick
            test_cost_model_tracks_simulator;
          Alcotest.test_case "machine monotonicity" `Quick
            test_machine_monotonicity;
          Alcotest.test_case "per-proc stats" `Quick test_per_proc_stats;
        ] );
      ( "comparison",
        [ Alcotest.test_case "LCG >= BLOCK" `Slow test_lcg_beats_block ] );
      ( "dataflow",
        [
          Alcotest.test_case "all codes, all H" `Slow test_dataflow_all_codes;
          Alcotest.test_case "validator catches gaps" `Quick
            test_dataflow_catches_missing_comm;
        ] );
      ( "comm",
        [
          Alcotest.test_case "unevaluable size omitted" `Quick
            test_comm_unevaluable_size;
          Alcotest.test_case "schedule = simulator words" `Quick
            test_comm_matches_exec;
          Alcotest.test_case "aggregation invariants" `Quick
            test_comm_aggregation;
          Alcotest.test_case "stencil frontier" `Quick
            test_comm_frontier_for_stencil;
        ] );
    ]
