examples/quickstart.ml: Assume Core Descriptor Dsmsim Env Format Ir List Symbolic
